package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cacheagg/internal/core"
	"cacheagg/internal/external"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		name   string
		passes int
		want   string
	}{
		{"adaptive", 1, "Adaptive(α₀=11, c=10)"},
		{"hashing-only", 1, "HashingOnly"},
		{"partition-always", 2, "PartitionAlways(2)"},
		{"partition-only", 1, "PartitionOnly"},
	}
	for _, c := range cases {
		s, err := parseStrategy(c.name, c.passes)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if s.Name() != c.want {
			t.Fatalf("%s: got %q, want %q", c.name, s.Name(), c.want)
		}
	}
	if _, err := parseStrategy("nope", 1); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestReadKeysText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.txt")
	if err := os.WriteFile(path, []byte("5\n7\n5\n18446744073709551615\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := readKeys(path, "text")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 7, 5, ^uint64(0)}
	if len(keys) != len(want) {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
}

func TestReadKeysBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	want := []uint64{1, 2, 3, 1 << 60}
	buf := make([]byte, 8*len(want))
	for i, k := range want {
		binary.LittleEndian.PutUint64(buf[i*8:], k)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := readKeys(path, "binary")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
}

func TestReadKeysErrors(t *testing.T) {
	if _, err := readKeys("/nonexistent/file", "text"); err == nil {
		t.Fatal("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("not-a-number\n"), 0o644)
	if _, err := readKeys(bad, "text"); err == nil {
		t.Fatal("garbage text should error")
	}
	if _, err := readKeys(bad, "weird"); err == nil {
		t.Fatal("unknown format should error")
	}
	// Truncated binary file.
	trunc := filepath.Join(dir, "trunc.bin")
	os.WriteFile(trunc, []byte{1, 2, 3}, 0o644)
	if _, err := readKeys(trunc, "binary"); err == nil {
		t.Fatal("truncated binary should error")
	}
}

func TestVerifyDistinct(t *testing.T) {
	keys := []uint64{3, 3, 9, 1}
	if err := verifyDistinct(keys, []uint64{3, 9, 1}); err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	if err := verifyDistinct(keys, []uint64{3, 9}); err == nil {
		t.Fatal("missing group should fail")
	}
	// Duplicate.
	if err := verifyDistinct(keys, []uint64{3, 3, 9}); err == nil {
		t.Fatal("duplicate group should fail")
	}
	// Phantom.
	if err := verifyDistinct(keys, []uint64{3, 9, 5}); err == nil {
		t.Fatal("phantom group should fail")
	}
}

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, exitOK},
		{errors.New("anything"), exitFailure},
		{fmt.Errorf("wrap: %w", core.ErrMemoryBudget), exitMemBudget},
		{fmt.Errorf("wrap: %w", external.ErrSpillBudget), exitSpillBudget},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), exitDeadline},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Fatalf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestMain lets the test binary impersonate the real command: CLI tests
// re-exec themselves with AGGRUN_BE_MAIN=1 and drive main() for real exit
// codes and stderr.
func TestMain(m *testing.M) {
	if os.Getenv("AGGRUN_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSelf executes this test binary as the aggrun command.
func runSelf(t *testing.T, args ...string) (exitCode int, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "AGGRUN_BE_MAIN=1")
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err == nil {
		return 0, errBuf.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("exec: %v", err)
	}
	return ee.ExitCode(), errBuf.String()
}

func TestCLITimeoutExitsCleanly(t *testing.T) {
	code, stderr := runSelf(t, "-n", "100000", "-timeout", "1ns")
	if code != exitDeadline {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitDeadline, stderr)
	}
	if !strings.Contains(stderr, "aggrun:") || !strings.Contains(stderr, "-timeout") {
		t.Fatalf("want a one-line timeout error, got: %q", stderr)
	}
	if strings.Contains(stderr, "goroutine") {
		t.Fatalf("stderr contains a stack trace: %q", stderr)
	}
}

func TestCLIMemoryBudgetExitCode(t *testing.T) {
	// A 1 MiB budget cannot hold even one worker's machinery for an
	// all-distinct input: typed failure, exit 3.
	code, stderr := runSelf(t, "-n", "1000000", "-k", "18446744073709551615",
		"-workers", "2", "-budget", "1048576")
	if code != exitMemBudget {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitMemBudget, stderr)
	}
	if !strings.Contains(stderr, "memory budget") {
		t.Fatalf("want a memory-budget error, got %q", stderr)
	}
}

func TestCLISpillDegradesAndSucceeds(t *testing.T) {
	// Same over-budget query with -spill: degrade out-of-core and succeed,
	// with the verified result.
	code, stderr := runSelf(t, "-n", "1000000", "-k", "18446744073709551615",
		"-cache", "32768", "-workers", "2", "-budget", "4194304", "-spill", "-verify")
	if code != exitOK {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
}

func TestCLISpillBudgetExitCode(t *testing.T) {
	// Degraded run with a 1 KiB spill cap: the spill phase must fail fast
	// with the typed spill-budget error, exit 4.
	code, stderr := runSelf(t, "-n", "1000000", "-k", "18446744073709551615",
		"-cache", "32768", "-workers", "2", "-budget", "4194304", "-spill", "-spill-budget", "1024")
	if code != exitSpillBudget {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitSpillBudget, stderr)
	}
	if !strings.Contains(stderr, "spill budget") {
		t.Fatalf("want a spill-budget error, got %q", stderr)
	}
}

func TestCLIUsageExitCodes(t *testing.T) {
	for _, args := range [][]string{
		{"-spill"},                         // -spill without -budget
		{"-spill-budget", "1024"},          // -spill-budget without -spill
		{"-not-a-flag"},                    // unknown flag (package flag)
		{"-budget", "zero point five MiB"}, // unparsable value (package flag)
	} {
		code, stderr := runSelf(t, args...)
		if code != exitUsage {
			t.Fatalf("%v: exit code = %d, want %d (stderr: %s)", args, code, exitUsage, stderr)
		}
	}
}

func TestCLIBadFlagsExitCleanly(t *testing.T) {
	for _, args := range [][]string{
		{"-strategy", "bogus"},
		{"-dist", "not-a-distribution"},
		{"-in", "/definitely/missing/file", "-format", "binary"},
		{"-in", "/dev/null", "-format", "bogus"},
	} {
		code, stderr := runSelf(t, args...)
		if code == 0 {
			t.Fatalf("%v: expected nonzero exit", args)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Fatalf("%v: stderr contains a stack trace: %q", args, stderr)
		}
		if !strings.Contains(stderr, "aggrun:") {
			t.Fatalf("%v: want one-line aggrun error, got %q", args, stderr)
		}
	}
}

func TestCLIGenerousTimeoutSucceeds(t *testing.T) {
	code, stderr := runSelf(t, "-n", "20000", "-k", "100", "-timeout", "1m", "-verify")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
}

// TestCLIGeneralKeys runs the general-key mode end to end for both key
// shapes, with the map-keyed verification on.
func TestCLIGeneralKeys(t *testing.T) {
	for _, kt := range []string{"strings", "composite2"} {
		code, stderr := runSelf(t, "-keytype", kt, "-dist", "zipf",
			"-n", "50000", "-k", "2000", "-verify", "-top", "2")
		if code != 0 {
			t.Fatalf("%s: exit code = %d, stderr: %s", kt, code, stderr)
		}
	}
}

// TestCLIGeneralKeysUsageErrors pins the typed usage refusals of flags
// the general-key path does not support.
func TestCLIGeneralKeysUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-keytype", "martian"},
		{"-keytype", "strings", "-in", "/dev/null"},
		{"-keytype", "strings", "-plan"},
		{"-keytype", "strings", "-trace", "/tmp/t.jsonl"},
		{"-keytype", "strings", "-strategy", "hashing-only"},
		{"-keytype", "composite2", "-budget", "1", "-spill"},
	} {
		code, stderr := runSelf(t, args...)
		if code != exitUsage {
			t.Fatalf("%v: exit code = %d, want %d (stderr: %s)", args, code, exitUsage, stderr)
		}
	}
}
