package sketch

// TopK tracks the highest-frequency-estimate keys seen so far. It is a
// fixed-capacity candidate list (capacities are single digits to low tens),
// so membership and replacement are linear scans — branch-predictable and
// allocation-free, far cheaper than a heap at these sizes.
//
// Estimates come from a Count-Min sketch, so they may be inflated by
// collisions; the list therefore yields heavy-hitter *candidates*. Callers
// must treat selection as advisory (a wrongly promoted cold key costs a
// little performance, never correctness).
type TopK struct {
	cap    int
	keys   []uint64
	hashes []uint64
	ests   []uint64
	minIdx int // index of the smallest estimate once full
	minEst uint64
}

// TopEntry is one heavy-hitter candidate.
type TopEntry struct {
	Key  uint64
	Hash uint64
	Est  uint64
}

// NewTopK returns a tracker for the cap highest-estimate keys. cap must be
// in [1, 64].
func NewTopK(cap int) *TopK {
	if cap < 1 || cap > 64 {
		panic("sketch: TopK capacity out of range [1,64]")
	}
	return &TopK{
		cap:    cap,
		keys:   make([]uint64, 0, cap),
		hashes: make([]uint64, 0, cap),
		ests:   make([]uint64, 0, cap),
	}
}

// Offer proposes key (with its hash) at frequency estimate est. Known keys
// have their estimate raised; new keys evict the current minimum once the
// list is full. Zero allocations after construction.
func (t *TopK) Offer(key, hash, est uint64) {
	for i, k := range t.keys {
		if k == key {
			if est > t.ests[i] {
				t.ests[i] = est
				if i == t.minIdx {
					t.refreshMin()
				}
			}
			return
		}
	}
	if len(t.keys) < t.cap {
		t.keys = append(t.keys, key)
		t.hashes = append(t.hashes, hash)
		t.ests = append(t.ests, est)
		if len(t.keys) == t.cap {
			t.refreshMin()
		}
		return
	}
	if est <= t.minEst {
		return
	}
	t.keys[t.minIdx] = key
	t.hashes[t.minIdx] = hash
	t.ests[t.minIdx] = est
	t.refreshMin()
}

// MinEst returns the smallest estimate currently retained, or 0 while the
// list is not yet full (everything is still accepted).
func (t *TopK) MinEst() uint64 {
	if len(t.keys) < t.cap {
		return 0
	}
	return t.minEst
}

func (t *TopK) refreshMin() {
	t.minIdx = 0
	t.minEst = t.ests[0]
	for i := 1; i < len(t.ests); i++ {
		if t.ests[i] < t.minEst {
			t.minEst = t.ests[i]
			t.minIdx = i
		}
	}
}

// Items returns the retained candidates sorted by descending estimate.
// It allocates (call it once, after feeding).
func (t *TopK) Items() []TopEntry {
	out := make([]TopEntry, len(t.keys))
	for i := range t.keys {
		out[i] = TopEntry{Key: t.keys[i], Hash: t.hashes[i], Est: t.ests[i]}
	}
	// Insertion sort: n <= 64.
	for i := 1; i < len(out); i++ {
		e := out[i]
		j := i - 1
		for j >= 0 && out[j].Est < e.Est {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = e
	}
	return out
}

// Reset clears the tracker for reuse without reallocating.
func (t *TopK) Reset() {
	t.keys = t.keys[:0]
	t.hashes = t.hashes[:0]
	t.ests = t.ests[:0]
	t.minIdx = 0
	t.minEst = 0
}
