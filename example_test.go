package cacheagg_test

import (
	"fmt"
	"sort"

	"cacheagg"
)

// The smallest useful program: COUNT and SUM per group.
func Example() {
	stores := []uint64{101, 102, 101, 103, 102, 101}
	revenue := []int64{250, 410, 90, 120, 300, 75}

	res, err := cacheagg.Aggregate(cacheagg.Input{
		GroupBy: stores,
		Columns: [][]int64{revenue},
		Aggregates: []cacheagg.AggSpec{
			{Func: cacheagg.Count},
			{Func: cacheagg.Sum, Col: 0},
		},
	}, cacheagg.Options{})
	if err != nil {
		panic(err)
	}

	// Result rows arrive in hash order; sort by store for stable output.
	rows := make([]int, res.Len())
	for i := range rows {
		rows[i] = i
	}
	sort.Slice(rows, func(a, b int) bool { return res.Groups[rows[a]] < res.Groups[rows[b]] })
	for _, i := range rows {
		fmt.Printf("store %d: %d orders, %d revenue\n",
			res.Groups[i], res.Aggs[0][i], res.Aggs[1][i])
	}
	// Output:
	// store 101: 3 orders, 415 revenue
	// store 102: 2 orders, 710 revenue
	// store 103: 1 orders, 120 revenue
}

// Distinct keys of a column, with the default adaptive strategy.
func ExampleDistinct() {
	keys := []uint64{7, 3, 7, 7, 9, 3}
	groups, err := cacheagg.Distinct(keys, cacheagg.Options{})
	if err != nil {
		panic(err)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	fmt.Println(groups)
	// Output:
	// [3 7 9]
}

// GROUP BY over a string column via dictionary encoding.
func ExampleAggregateStrings() {
	cities := []string{"paris", "tokyo", "paris", "berlin"}
	res, err := cacheagg.AggregateStrings(cacheagg.StringInput{
		GroupBy:    cities,
		Aggregates: []cacheagg.AggSpec{{Func: cacheagg.Count}},
	}, cacheagg.Options{})
	if err != nil {
		panic(err)
	}
	type row struct {
		city string
		n    int64
	}
	var rows []row
	for i, c := range res.Groups {
		rows = append(rows, row{c, res.Aggs[0][i]})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].city < rows[b].city })
	for _, r := range rows {
		fmt.Printf("%s %d\n", r.city, r.n)
	}
	// Output:
	// berlin 1
	// paris 2
	// tokyo 1
}
