package cacheagg

// Hot-path kernel sweeps: scalar (row-at-a-time, reference) vs batched
// (morsel-wide) versions of the aggregation inner loops, over uniform keys
// at N=2^20. These are the benchmarks behind this repo's batching work:
//
//	go test -bench 'BenchmarkHashing' -count 10 > new.txt
//	benchstat -col '/path' new.txt          # scalar vs batched, per sweep
//
// The scalar variants exercise exactly the code the engine used before the
// batch kernels existed (Murmur2 per row, InsertRawCols/InsertStateCols per
// row); the batched variants exercise what the engine runs now (HashBatch +
// InsertRawBatch/InsertStateBatch). The differential tests in
// internal/hashtable prove the two produce bit-identical tables, so the
// comparison is purely about speed.

import (
	"fmt"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/hashtable"
	"cacheagg/internal/xrand"
)

// hotKs is the uniform-K sweep of the hashing benchmarks: in-cache table
// (2^8), around the fill limit (2^14), and far beyond it (2^19).
var hotKs = []int{8, 14, 19}

func hotTable(words int) *hashtable.Table {
	return hashtable.New(hashtable.Config{
		CapacityRows: hashtable.CapacityForCache(benchCache, words),
		Blocks:       hashfn.Fanout,
		Words:        words,
	})
}

// drainInsertScalar runs the pre-batching intake loop: hash and insert one
// row at a time, splitting the table whenever it fills.
func drainInsertScalar(tb *hashtable.Table, keys []uint64, cols [][]int64, ops []agg.WordOp) int {
	splits := 0
	for i := 0; i < len(keys); {
		h := hashfn.Murmur2(keys[i])
		if !tb.InsertRawCols(h, keys[i], cols, i, ops) {
			tb.SplitRuns()
			splits++
			continue
		}
		i++
	}
	return splits
}

// drainInsertBatched runs the batched intake loop: morsel-wide hashing,
// then software-pipelined batch inserts.
func drainInsertBatched(tb *hashtable.Table, keys []uint64, cols [][]int64, kern *agg.Kernels, hs []uint64) int {
	splits := 0
	for i := 0; i < len(keys); {
		blk := min(len(keys)-i, len(hs))
		hashfn.HashBatch(keys[i:i+blk], hs[:blk])
		done := 0
		for done < blk {
			n := tb.InsertRawBatch(hs[done:blk], keys[i+done:i+blk], cols, i+done, kern)
			done += n
			if done < blk {
				tb.SplitRuns()
				splits++
			}
		}
		i += blk
	}
	return splits
}

// BenchmarkHashingInsert sweeps the HASHING routine's insert loop — the
// single hottest loop of the operator — over K, scalar vs batched.
func BenchmarkHashingInsert(b *testing.B) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}})
	ops := lay.WordOps()
	kern := lay.Kernels()
	rng := xrand.NewXoshiro256(7)
	vals := make([]int64, benchN)
	for i := range vals {
		vals[i] = int64(rng.Next() % 1000)
	}
	cols := [][]int64{vals}
	hs := make([]uint64, 4096)
	for _, kExp := range hotKs {
		keys := benchKeys(b, datagen.Uniform, 1<<uint(kExp))
		b.Run(fmt.Sprintf("scalar/K=2^%d", kExp), func(b *testing.B) {
			tb := hotTable(lay.Words)
			b.SetBytes(benchN * 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Reset()
				drainInsertScalar(tb, keys, cols, ops)
			}
		})
		b.Run(fmt.Sprintf("batched/K=2^%d", kExp), func(b *testing.B) {
			tb := hotTable(lay.Words)
			b.SetBytes(benchN * 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Reset()
				drainInsertBatched(tb, keys, cols, kern, hs)
			}
		})
	}
}

// BenchmarkHashingHash sweeps just the hash computation: one Murmur2 call
// per row vs the morsel-wide HashBatch kernel.
func BenchmarkHashingHash(b *testing.B) {
	keys := benchKeys(b, datagen.Uniform, 1<<19)
	out := make([]uint64, benchN)
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			for j, k := range keys {
				out[j] = hashfn.Murmur2(k)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			hashfn.HashBatch(keys, out)
		}
	})
}

// BenchmarkHashingFold sweeps the aggregate fold kernels on a gathered
// batch: per-row Op.Apply dispatch vs the monomorphic column kernels.
func BenchmarkHashingFold(b *testing.B) {
	const groups = 1 << 14
	states := make([]uint64, groups)
	slots := make([]int32, benchN)
	vals := make([]int64, benchN)
	rng := xrand.NewXoshiro256(3)
	for i := range slots {
		slots[i] = int32(rng.Uint64n(groups))
		vals[i] = int64(rng.Next() % 1000)
	}
	op := agg.WordOp{Op: agg.OpAdd, Src: agg.SrcCol}
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			for j, s := range slots {
				states[s] = op.Op.Apply(states[s], uint64(vals[j]))
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		fold := op.ColumnFolder()
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			fold(states, slots, vals)
		}
	})
}

// BenchmarkHashingUniformK is the end-to-end uniform-K sweep at N=2^20
// through the public operator (the batched engine): the trend line the
// tentpole targets. Scalar-vs-batched at this level is a before/after
// comparison across commits (see docs/PERFORMANCE.md).
func BenchmarkHashingUniformK(b *testing.B) {
	for _, kExp := range hotKs {
		keys := benchKeys(b, datagen.Uniform, 1<<uint(kExp))
		b.Run(fmt.Sprintf("K=2^%d", kExp), func(b *testing.B) {
			runDistinct(b, coreCfg(core.HashingOnly()), keys)
		})
	}
}
