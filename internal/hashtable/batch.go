package hashtable

// Batch (morsel-wide) insert path.
//
// The scalar inserts (InsertRawCols / InsertStateCols) process one row at a
// time: every probe is a dependent cache miss, and every state word pays a
// dynamic dispatch through agg.Op.Apply. The batch path restructures the
// same work into three phases over a whole batch of rows:
//
//  1. Claim — locate (or claim) the slot of every row. The probe loop is
//     software-pipelined: the first probe line of a group of pipelineWidth
//     rows is loaded up front, so the independent misses overlap instead of
//     serializing, before each row's (now cache-warm) probe is resolved.
//  2. Fold/Merge — apply the aggregate contributions word-major: one
//     monomorphic kernel per state word sweeps the whole batch (see
//     agg.ColumnFolder), eliminating per-row dispatch.
//
// New rows are initialized to the word's identity during the claim and then
// folded like every other row — identity ⊕ v is bitwise v for all supported
// operations, so the batch path produces bit-identical tables to the scalar
// path (the differential tests insert the same rows through both and compare
// the split runs verbatim). The row-consumption semantics also match: the
// batch stops at the first row that does not fit (fill limit or exhausted
// block) and reports how many rows it absorbed; rows before the failing one
// are fully applied, the failing row and everything after it not at all.

import (
	"math"

	"cacheagg/internal/agg"
)

// pipelineWidth is the number of probes kept in flight by the claim loop.
// Eight independent loads comfortably cover the handful of line-fill
// buffers current cores resolve misses through, without bloating the
// per-group bookkeeping.
const pipelineWidth = 8

// slotScratch returns a reusable []int32 of length n.
func (t *Table) slotScratch(n int) []int32 {
	if cap(t.batchSlots) < n {
		t.batchSlots = make([]int32, n)
	}
	return t.batchSlots[:n]
}

// claimBatch assigns a slot to each of the n batch rows (hashes[j],
// keys[j]), claiming fresh slots — initialized to the per-word identity —
// for keys not yet present. It returns the number of rows claimed; a return
// m < n means row m hit the fill limit or an exhausted block (and rows
// m..n-1 were not touched). rowsIn/rows accounting matches the scalar path
// exactly (rowsIn is bumped once per absorbed row, merely batched).
func (t *Table) claimBatch(hashes, keys []uint64, slots []int32, ops []agg.WordOp) int {
	var s0 [pipelineWidth]int32
	// Hoist the table columns into locals: the compiler cannot otherwise
	// prove the receiver's fields stable across the stores below, and the
	// reloads show up at this loop's per-row scale.
	version, hs, ks := t.version, t.hashes, t.keys
	epoch := t.epoch
	blockShift, blockHigh, blockMask := t.shift, uint64(t.blocks-1), t.blockMask
	blockRows := t.blockRows
	n := len(keys)
	j := 0
	for j < n {
		g := n - j
		if g > pipelineWidth {
			g = pipelineWidth
		}
		// Pipeline stage 1: compute the first probe slot of every row in
		// the group and touch its version word. The loads are independent,
		// so outstanding misses overlap instead of serializing; the
		// resolution stage then probes cache-warm lines. The sum keeps the
		// loads observable (no dead-code elimination).
		warm := uint32(0)
		for x := 0; x < g; x++ {
			h := hashes[j+x]
			s := int(h>>blockShift&blockHigh)*blockRows + int(h&blockMask)
			s0[x] = int32(s)
			warm += uint32(version[s])
		}
		t.warmSink += warm
		// Pipeline stage 2: resolve each probe. At the paper's 25 % fill
		// the first slot is almost always either free or the matching
		// group, so the common path touches only the pre-warmed line.
	resolve:
		for x := 0; x < g; x++ {
			h, k := hashes[j+x], keys[j+x]
			s := int(s0[x])
			if version[s] == epoch {
				if hs[s] == h && ks[s] == k {
					slots[j+x] = int32(s)
					continue
				}
				// Home slot holds a different group: continue the linear
				// probe in-block from the next offset (same order as find,
				// which would redundantly re-check the home slot).
				m := int(blockMask)
				off := int(h) & m
				base := s - off
				free := -1
				for i := 1; i < blockRows; i++ {
					s2 := base + (off+i)&m
					if version[s2] != epoch {
						free = s2
						break
					}
					if hs[s2] == h && ks[s2] == k {
						slots[j+x] = int32(s2)
						continue resolve
					}
				}
				if free < 0 {
					t.rowsIn += j + x
					return j + x
				}
				s = free
			}
			// s is a free slot: claim it, initialized to the identity.
			if t.rows >= t.maxRows {
				t.rowsIn += j + x
				return j + x
			}
			version[s] = epoch
			hs[s] = h
			ks[s] = k
			for w := range ops {
				t.states[w][s] = ops[w].Op.Identity()
			}
			t.rows++
			slots[j+x] = int32(s)
		}
		j += g
	}
	t.rowsIn += n
	return n
}

// InsertRawBatch inserts (or folds) a batch of raw input rows. hashes and
// keys are batch-aligned (row j of the batch is hashes[j]/keys[j] and
// corresponds to global row lo+j of the full input columns cols). It
// returns the number of rows absorbed; a short count means the table is
// full at the first unconsumed row and the caller must split and retry,
// exactly like a false return from the scalar InsertRawCols.
func (t *Table) InsertRawBatch(hashes, keys []uint64, cols [][]int64, lo int, kern *agg.Kernels) int {
	if t.capRows > math.MaxInt32 {
		return t.insertRawScalar(hashes, keys, cols, lo, kern.Ops)
	}
	slots := t.slotScratch(len(keys))
	m := t.claimBatch(hashes, keys, slots, kern.Ops)
	for w, fold := range kern.Fold {
		if c := kern.Cols[w]; c >= 0 {
			fold(t.states[w], slots[:m], cols[c][lo:lo+m])
		} else {
			fold(t.states[w], slots[:m], nil)
		}
	}
	return m
}

// InsertStateBatch inserts (or merges) a batch of rows carrying partial
// aggregate states. hashes and keys are batch-aligned; row j corresponds to
// row lo+j of the column-decomposed states. Returns the number of rows
// absorbed (short count ⇒ table full at the first unconsumed row).
func (t *Table) InsertStateBatch(hashes, keys []uint64, states [][]uint64, lo int, kern *agg.Kernels) int {
	if t.capRows > math.MaxInt32 {
		return t.insertStateScalar(hashes, keys, states, lo, kern.Ops)
	}
	slots := t.slotScratch(len(keys))
	m := t.claimBatch(hashes, keys, slots, kern.Ops)
	for w, merge := range kern.Merge {
		merge(t.states[w], slots[:m], states[w][lo:lo+m])
	}
	return m
}

// insertRawScalar is the row-at-a-time fallback of InsertRawBatch for
// tables too large for int32 slot indices (beyond-cache grown tables on
// enormous buckets).
func (t *Table) insertRawScalar(hashes, keys []uint64, cols [][]int64, lo int, ops []agg.WordOp) int {
	for j := range keys {
		if !t.InsertRawCols(hashes[j], keys[j], cols, lo+j, ops) {
			return j
		}
	}
	return len(keys)
}

func (t *Table) insertStateScalar(hashes, keys []uint64, states [][]uint64, lo int, ops []agg.WordOp) int {
	for j := range keys {
		if !t.InsertStateCols(hashes[j], keys[j], states, lo+j, ops) {
			return j
		}
	}
	return len(keys)
}
