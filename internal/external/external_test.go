package external

import (
	"os"
	"testing"
	"testing/quick"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

func testCfg(budgetRows int) Config {
	return Config{
		MemoryBudgetRows: budgetRows,
		Core:             core.Config{Workers: 2, CacheBytes: 32 << 10},
	}
}

func refAggregate(in *core.Input) map[uint64][]int64 {
	lay := agg.NewLayout(in.Specs)
	states := map[uint64][]uint64{}
	row := 0
	vals := func(c int) int64 { return in.AggCols[c][row] }
	for i, k := range in.Keys {
		row = i
		if st, ok := states[k]; ok {
			lay.FoldRow(st, vals)
		} else {
			st := make([]uint64, lay.Words)
			lay.InitRow(st, vals)
			states[k] = st
		}
	}
	out := map[uint64][]int64{}
	for k, st := range states {
		out[k] = lay.FinalizeRow(st, nil)
	}
	return out
}

func checkResult(t *testing.T, res *Result, in *core.Input) {
	t.Helper()
	want := refAggregate(in)
	if res.Groups() != len(want) {
		t.Fatalf("groups = %d, want %d", res.Groups(), len(want))
	}
	seen := map[uint64]bool{}
	for r, k := range res.Keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
		wantRow, ok := want[k]
		if !ok {
			t.Fatalf("phantom key %d", k)
		}
		for si := range in.Specs {
			if res.Aggs[si][r] != wantRow[si] {
				t.Fatalf("key %d spec %v: %d != %d", k, in.Specs[si], res.Aggs[si][r], wantRow[si])
			}
		}
	}
}

func mkInput(dist datagen.Dist, n int, k uint64, seed uint64) *core.Input {
	keys := datagen.Generate(datagen.Spec{Dist: dist, N: n, K: k, Seed: seed})
	rng := xrand.NewXoshiro256(seed + 1)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Next()%2001) - 1000
	}
	return &core.Input{
		Keys:    keys,
		AggCols: [][]int64{vals},
		Specs: []agg.Spec{
			{Kind: agg.Count},
			{Kind: agg.Sum, Col: 0},
			{Kind: agg.Min, Col: 0},
			{Kind: agg.Max, Col: 0},
			{Kind: agg.Avg, Col: 0},
		},
	}
}

func TestExternalMatchesReference(t *testing.T) {
	for _, dist := range []datagen.Dist{datagen.Uniform, datagen.Sorted, datagen.HeavyHitter} {
		for _, k := range []uint64{1, 100, 20000} {
			in := mkInput(dist, 50000, k, 7)
			res, err := Aggregate(testCfg(8192), in)
			if err != nil {
				t.Fatalf("%v/K=%d: %v", dist, k, err)
			}
			checkResult(t, res, in)
			if res.Stats.Chunks != (50000+8191)/8192 {
				t.Fatalf("chunks = %d", res.Stats.Chunks)
			}
			if res.Stats.SpilledRows == 0 {
				t.Fatal("nothing spilled")
			}
		}
	}
}

func TestExternalDeepRecursion(t *testing.T) {
	// All-distinct keys with a tiny budget: level-0 partitions exceed the
	// budget and must recurse to deeper digits.
	const n = 60000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	in := &core.Input{Keys: keys}
	res, err := Aggregate(testCfg(200), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != n {
		t.Fatalf("groups = %d, want %d", res.Groups(), n)
	}
	if res.Stats.MergeLevels < 2 {
		t.Fatalf("expected disk-level recursion, MergeLevels = %d", res.Stats.MergeLevels)
	}
}

func TestExternalEarlyAggregationShrinksSpill(t *testing.T) {
	// Low-cardinality input: each chunk pre-aggregates to K groups, so the
	// spill volume must be ~chunks·K records, far below N.
	const n = 100000
	const k = 50
	in := mkInput(datagen.Uniform, n, k, 3)
	res, err := Aggregate(testCfg(10000), in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	maxSpill := int64((n/10000 + 1) * k)
	if res.Stats.SpilledRows > maxSpill {
		t.Fatalf("spilled %d rows, early aggregation should cap at ~%d",
			res.Stats.SpilledRows, maxSpill)
	}
}

func TestExternalEmptyInput(t *testing.T) {
	res, err := Aggregate(testCfg(100), &core.Input{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != 0 {
		t.Fatalf("groups = %d", res.Groups())
	}
}

func TestExternalSingleChunkNoRecursion(t *testing.T) {
	in := mkInput(datagen.Uniform, 1000, 100, 5)
	res, err := Aggregate(testCfg(1<<20), in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	if res.Stats.Chunks != 1 || res.Stats.MergeLevels != 1 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestExternalValidatesInput(t *testing.T) {
	in := &core.Input{
		Keys:  []uint64{1},
		Specs: []agg.Spec{{Kind: agg.Sum, Col: 3}},
	}
	if _, err := Aggregate(testCfg(100), in); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestExternalQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16, domRaw uint8) bool {
		n := int(nRaw)%4000 + 1
		dom := uint64(domRaw)%500 + 1
		rng := xrand.NewXoshiro256(seed)
		keys := make([]uint64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Next() % dom
			vals[i] = int64(rng.Next()%101) - 50
		}
		in := &core.Input{
			Keys:    keys,
			AggCols: [][]int64{vals},
			Specs:   []agg.Spec{{Kind: agg.Count}, {Kind: agg.Avg, Col: 0}},
		}
		budget := int(seed%1000) + 50
		res, err := Aggregate(testCfg(budget), in)
		if err != nil {
			return false
		}
		want := refAggregate(in)
		if res.Groups() != len(want) {
			return false
		}
		for r, k := range res.Keys {
			w, ok := want[k]
			if !ok || res.Aggs[0][r] != w[0] || res.Aggs[1][r] != w[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPlanShapes(t *testing.T) {
	p := BuildPlan([]agg.Spec{
		{Kind: agg.Count},
		{Kind: agg.Avg, Col: 2},
		{Kind: agg.Min, Col: 1},
	})
	if p.Width() != 4 {
		t.Fatalf("width = %d, want 4 (count + avg(sum,count) + min)", p.Width())
	}
	wantOff := []int{0, 1, 3}
	for i, w := range wantOff {
		if p.Off[i] != w {
			t.Fatalf("off = %v", p.Off)
		}
	}
	wantMerge := []agg.Kind{agg.Sum, agg.Sum, agg.Sum, agg.Min}
	for i, w := range wantMerge {
		if p.MergeKind[i] != w {
			t.Fatalf("mergeKind = %v", p.MergeKind)
		}
	}
}

func TestReadSpillCorruptFile(t *testing.T) {
	dir := t.TempDir()
	e := &extExec{
		cfg:  testCfg(100).withDefaults(),
		plan: BuildPlan([]agg.Spec{{Kind: agg.Count}}),
		dir:  dir,
	}
	path := dir + "/bad.spill"
	// Record size is 16 bytes (key + one partial); write 10 bytes.
	if err := writeFile(path, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.readSpill(path); err == nil {
		t.Fatal("truncated spill file should error")
	}
	if _, _, err := e.readSpill(dir + "/missing.spill"); err == nil {
		t.Fatal("missing spill file should error")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
