package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	fs := OS()
	path := filepath.Join(t.TempDir(), "f")
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 5 {
		t.Fatalf("size = %d", st.Size())
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("file not removed")
	}
}

func TestInjectorFailsExactlyNthOp(t *testing.T) {
	inj := NewInjector(OS(), OpWrite, 2)
	path := filepath.Join(t.TempDir(), "f")
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	_, err = f.Write([]byte("b"))
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != OpWrite || ie.N != 2 {
		t.Fatalf("write 2: err = %v", err)
	}
	if !inj.Triggered() {
		t.Fatal("Triggered() = false after the fault fired")
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 should pass again: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if inj.Count(OpWrite) != 3 || inj.Count(OpCreate) != 1 || inj.Count(OpClose) != 1 {
		t.Fatalf("counts: write=%d create=%d close=%d",
			inj.Count(OpWrite), inj.Count(OpCreate), inj.Count(OpClose))
	}
}

func TestInjectorDisabledIsPureCounter(t *testing.T) {
	inj := NewInjector(OS(), OpWrite, 0)
	path := filepath.Join(t.TempDir(), "f")
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if inj.Triggered() {
		t.Fatal("disabled injector triggered")
	}
	if inj.Count(OpWrite) != 5 {
		t.Fatalf("write count = %d", inj.Count(OpWrite))
	}
}

func TestInjectedCloseStillClosesFile(t *testing.T) {
	// A close fault must not leak the real descriptor: the wrapped file is
	// closed underneath, so a second close reports "already closed".
	inj := NewInjector(OS(), OpClose, 1)
	path := filepath.Join(t.TempDir(), "f")
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var ie *InjectedError
	if err := f.Close(); !errors.As(err, &ie) {
		t.Fatalf("close: err = %v", err)
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("second close: err = %v, want ErrClosed (underlying file must be closed)", err)
	}
}

func TestInjectorCreateAndRemoveFaults(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), OpCreate, 1)
	if _, err := inj.Create(filepath.Join(dir, "f")); err == nil {
		t.Fatal("create fault did not fire")
	}
	if _, err := os.Stat(filepath.Join(dir, "f")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed create left a file behind")
	}

	inj = NewInjector(OS(), OpRemove, 1)
	f, err := inj.Create(filepath.Join(dir, "g"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := inj.Remove(filepath.Join(dir, "g")); err == nil {
		t.Fatal("remove fault did not fire")
	}
	if _, err := os.Stat(filepath.Join(dir, "g")); err != nil {
		t.Fatal("injected remove should leave the file in place")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpCreate: "create", OpOpen: "open", OpWrite: "write",
		OpClose: "close", OpRead: "read", OpRemove: "remove",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", int(op), op.String(), want)
		}
	}
}
