// Command aggload is the load harness for aggserve: it drives many
// concurrent clients against a running server with a mixed profile of
// datasets, aggregate shapes, priorities and deadlines, and then audits
// the outcome taxonomy.
//
// Every response must be one of the two documented shapes — a well-formed
// JSONL result whose trailer row count matches the rows received, or a
// typed error envelope with a known code. Anything else (an unknown code,
// a malformed body, an internal/internal_panic response, a transport
// error) is a harness failure and a nonzero exit. Overload outcomes
// (admission_queue_full, budget_unavailable, shed, deadline_exceeded) are
// expected under pressure and merely counted.
//
// Examples:
//
//	aggload -url http://localhost:8080 -clients 64 -requests 20
//	aggload -url http://localhost:8080 -clients 256 -requests 50 \
//	  -tight-deadlines 0.2 -max-p99 2s
//	aggload -url http://localhost:8080 -stream 8 -stream-blocks 64
//
// With -stream N the harness additionally drives N concurrent streaming
// ingest sessions against /v1/ingest: each producer begins a session,
// pushes blocks (retrying typed 429 backpressure, which is counted, not
// failed), interleaves rolling-window queries and explicit seals, then
// finishes and checks the final aggregates against its own oracle of the
// rows it pushed. A wrong final aggregate is a harness failure, exactly
// like an untyped error.
//
// Exit codes: 0 = every outcome typed and bounds held, 1 = taxonomy or
// bound violation, 2 = usage error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	os.Exit(run())
}

// expectedCodes are the typed outcomes a loaded-but-healthy server may
// legitimately produce. internal and internal_panic are deliberately
// absent: under any load, those are bugs.
var expectedCodes = map[string]bool{
	"admission_queue_full": true,
	"budget_unavailable":   true,
	"shed":                 true,
	"deadline_exceeded":    true,
	"draining":             true,
	"cancelled":            true,
	"backpressure":         true,
}

type outcome struct {
	kind    string // "ok", an error code, "transport", "malformed"
	latency time.Duration
	detail  string
}

func run() int {
	var (
		url      = flag.String("url", "", "base URL of the aggserve instance (required)")
		clients  = flag.Int("clients", 64, "concurrent client goroutines")
		requests = flag.Int("requests", 20, "requests per client")
		seed     = flag.Int64("seed", 1, "profile seed")
		tight    = flag.Float64("tight-deadlines", 0.1, "fraction of requests with a near-unmeetable deadline")
		noCache  = flag.Float64("no-cache", 0.2, "fraction of requests bypassing the result cache")
		maxP99   = flag.Duration("max-p99", 0, "fail if successful-request p99 exceeds this (0 = no bound)")
		minOK    = flag.Int("min-ok", 1, "fail unless at least this many requests succeed")

		stream       = flag.Int("stream", 0, "concurrent streaming ingest sessions (0 disables)")
		streamBlocks = flag.Int("stream-blocks", 32, "blocks pushed per streaming session")
		streamRows   = flag.Int("stream-rows", 256, "rows per pushed block")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "aggload: -url is required")
		flag.Usage()
		return 2
	}
	if *clients < 1 || *requests < 1 {
		fmt.Fprintln(os.Stderr, "aggload: -clients and -requests must be positive")
		return 2
	}

	datasets, err := discoverDatasets(*url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggload:", err)
		return 1
	}
	fmt.Printf("aggload: %d clients x %d requests against %s (datasets %v)\n",
		*clients, *requests, *url, datasets)

	httpc := &http.Client{Timeout: 2 * time.Minute}
	outcomes := make([]outcome, *clients**requests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for i := 0; i < *requests; i++ {
				req := buildRequest(rng, datasets, *tight, *noCache)
				outcomes[c**requests+i] = doRequest(httpc, *url, req)
			}
		}(c)
	}
	wg.Wait()

	if *stream > 0 {
		outcomes = append(outcomes, runStream(httpc, *url, *stream, *streamBlocks, *streamRows, *seed)...)
	}
	elapsed := time.Since(start)

	return audit(outcomes, elapsed, *maxP99, *minOK)
}

// runStream drives the streaming ingest sessions. Every HTTP exchange
// becomes one outcome; a finish whose aggregates disagree with the
// producer's oracle is reported as malformed.
func runStream(httpc *http.Client, url string, sessions, blocks, rowsPerBlock int, seed int64) []outcome {
	fmt.Printf("aggload: %d streaming sessions x %d blocks x %d rows\n",
		sessions, blocks, rowsPerBlock)
	var mu sync.Mutex
	var out []outcome
	collect := func(o outcome) {
		mu.Lock()
		out = append(out, o)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			streamSession(httpc, url, fmt.Sprintf("load-%d-%d", seed, c),
				rand.New(rand.NewSource(seed+int64(c))), blocks, rowsPerBlock, collect)
		}(c)
	}
	wg.Wait()
	return out
}

// streamSession runs one producer: begin, push (with backpressure
// retries), interleaved window queries and seals, finish, oracle check.
func streamSession(httpc *http.Client, url, name string, rng *rand.Rand, blocks, rowsPerBlock int, collect func(outcome)) {
	op := func(body string) (string, outcome) {
		start := time.Now()
		resp, err := httpc.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			return "", outcome{kind: "transport", detail: err.Error()}
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/jsonl") {
				var buf strings.Builder
				if _, err := copyBody(&buf, resp); err != nil {
					return "", outcome{kind: "malformed", detail: err.Error()}
				}
				return buf.String(), outcome{kind: "ok", latency: time.Since(start)}
			}
			var ack map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
				return "", outcome{kind: "malformed", detail: "undecodable ingest ack: " + err.Error()}
			}
			return "", outcome{kind: "ok", latency: time.Since(start)}
		}
		var env struct {
			Error struct {
				Code         string `json:"code"`
				Detail       string `json:"detail"`
				RetryAfterMS int64  `json:"retry_after_ms"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
			return "", outcome{kind: "malformed",
				detail: fmt.Sprintf("status %d with undecodable error envelope", resp.StatusCode)}
		}
		return "", outcome{kind: env.Error.Code, latency: time.Since(start), detail: env.Error.Detail}
	}

	_, o := op(fmt.Sprintf(
		`{"session":%q,"op":"begin","aggregates":[{"func":"count"},{"func":"sum","col":0}]}`, name))
	collect(o)
	if o.kind != "ok" {
		return // a typed begin failure (draining, session_exists) ends the session
	}

	oracle := map[uint64][2]int64{}
	keys := make([]uint64, rowsPerBlock)
	col := make([]int64, rowsPerBlock)
	for b := 0; b < blocks; b++ {
		for i := range keys {
			keys[i] = uint64(rng.Intn(512))
			col[i] = int64(rng.Intn(2001) - 1000)
		}
		kb, _ := json.Marshal(keys)
		cb, _ := json.Marshal(col)
		body := fmt.Sprintf(`{"session":%q,"op":"push","keys":%s,"columns":[%s]}`, name, kb, cb)
		acked := false
		for attempt := 0; attempt < 1000; attempt++ {
			_, o := op(body)
			collect(o)
			if o.kind == "ok" {
				acked = true
				break
			}
			if o.kind != "backpressure" {
				return // any other failure is already recorded; stop pushing
			}
			time.Sleep(time.Millisecond)
		}
		if !acked {
			collect(outcome{kind: "malformed", detail: "push starved by backpressure for 1000 attempts"})
			return
		}
		// Only acknowledged blocks enter the oracle.
		for i := range keys {
			e := oracle[keys[i]]
			e[0]++
			e[1] += col[i]
			oracle[keys[i]] = e
		}
		switch rng.Intn(8) {
		case 0:
			_, o := op(fmt.Sprintf(`{"session":%q,"op":"seal"}`, name))
			collect(o)
		case 1:
			jsonl, o := op(fmt.Sprintf(`{"session":%q,"op":"query","window":%d}`, name, rng.Intn(4)))
			if o.kind == "ok" {
				if err := validateStreamBody(jsonl); err != nil {
					o = outcome{kind: "malformed", detail: "query: " + err.Error()}
				}
			}
			collect(o)
		}
	}

	jsonl, o := op(fmt.Sprintf(`{"session":%q,"op":"finish"}`, name))
	if o.kind == "ok" {
		if err := checkFinish(jsonl, oracle); err != nil {
			o = outcome{kind: "malformed", detail: "finish: " + err.Error()}
		}
	}
	collect(o)
}

// copyBody drains a response body into w.
func copyBody(w *strings.Builder, resp *http.Response) (int64, error) {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var n int64
	for sc.Scan() {
		w.Write(sc.Bytes())
		w.WriteByte('\n')
		n += int64(len(sc.Bytes())) + 1
	}
	return n, sc.Err()
}

// streamRow is one JSONL line of an ingest query/finish body.
type streamRow struct {
	G    *uint64 `json:"g"`
	A    []int64 `json:"a"`
	Done bool    `json:"done"`
	Rows int     `json:"rows"`
}

// parseStreamBody validates the header/rows/trailer shape and returns the
// rows.
func parseStreamBody(body string) ([]streamRow, error) {
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("body has %d lines, want header + trailer", len(lines))
	}
	var hdr struct {
		Groups *int `json:"groups"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Groups == nil {
		return nil, fmt.Errorf("bad header %q", lines[0])
	}
	var rows []streamRow
	done := false
	for _, line := range lines[1:] {
		if done {
			return nil, fmt.Errorf("data after the done trailer")
		}
		var row streamRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("bad line %q", line)
		}
		if row.Done {
			done = true
			if row.Rows != len(rows) {
				return nil, fmt.Errorf("trailer says %d rows, saw %d", row.Rows, len(rows))
			}
			continue
		}
		if row.G == nil {
			return nil, fmt.Errorf("row without group key: %q", line)
		}
		rows = append(rows, row)
	}
	if !done {
		return nil, fmt.Errorf("truncated body: no done trailer after %d rows", len(rows))
	}
	if len(rows) != *hdr.Groups {
		return nil, fmt.Errorf("header says %d groups, saw %d rows", *hdr.Groups, len(rows))
	}
	return rows, nil
}

func validateStreamBody(body string) error {
	_, err := parseStreamBody(body)
	return err
}

// checkFinish compares a finish body against the producer's oracle of
// acknowledged rows: same groups, bit-identical count and sum.
func checkFinish(body string, oracle map[uint64][2]int64) error {
	rows, err := parseStreamBody(body)
	if err != nil {
		return err
	}
	if len(rows) != len(oracle) {
		return fmt.Errorf("result has %d groups, oracle %d", len(rows), len(oracle))
	}
	for _, r := range rows {
		want, ok := oracle[*r.G]
		if !ok {
			return fmt.Errorf("group %d not in oracle", *r.G)
		}
		if len(r.A) != 2 || r.A[0] != want[0] || r.A[1] != want[1] {
			return fmt.Errorf("group %d = %v, oracle wants %v", *r.G, r.A, want)
		}
	}
	return nil
}

// discoverDatasets asks /healthz which datasets the server hosts.
func discoverDatasets(url string) ([]string, error) {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "serving" {
		return nil, fmt.Errorf("server is %q, not serving", h.Status)
	}
	if len(h.Datasets) == 0 {
		return nil, fmt.Errorf("server hosts no datasets")
	}
	sort.Strings(h.Datasets)
	return h.Datasets, nil
}

// buildRequest draws one request from the mixed profile: random dataset,
// 1-3 aggregates over the two derived columns, a priority mix of roughly
// 20/60/20, and deadlines that are absent, generous, or (for the tight
// fraction) nearly unmeetable.
func buildRequest(rng *rand.Rand, datasets []string, tight, noCache float64) map[string]any {
	req := map[string]any{
		"dataset": datasets[rng.Intn(len(datasets))],
	}
	funcs := []string{"count", "sum", "min", "max", "avg"}
	nagg := 1 + rng.Intn(3)
	aggs := make([]map[string]any, nagg)
	for i := range aggs {
		f := funcs[rng.Intn(len(funcs))]
		a := map[string]any{"func": f}
		if f != "count" {
			a["col"] = rng.Intn(2)
		}
		aggs[i] = a
	}
	req["aggregates"] = aggs
	switch p := rng.Float64(); {
	case p < 0.2:
		req["priority"] = "low"
	case p > 0.8:
		req["priority"] = "high"
	}
	switch d := rng.Float64(); {
	case d < tight:
		req["deadline_ms"] = 1 + rng.Intn(3)
	case d < tight+0.5:
		req["deadline_ms"] = 10000 + rng.Intn(10000)
	}
	if rng.Float64() < noCache {
		req["no_cache"] = true
	}
	return req
}

// doRequest executes one request and classifies the response.
func doRequest(httpc *http.Client, url string, req map[string]any) outcome {
	body, _ := json.Marshal(req)
	start := time.Now()
	resp, err := httpc.Post(url+"/v1/aggregate", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{kind: "transport", detail: err.Error()}
	}
	defer resp.Body.Close()
	lat := func() time.Duration { return time.Since(start) }

	if resp.StatusCode == http.StatusOK {
		if err := validateResult(resp); err != nil {
			return outcome{kind: "malformed", detail: err.Error()}
		}
		return outcome{kind: "ok", latency: lat()}
	}
	var env struct {
		Error struct {
			Code         string `json:"code"`
			Detail       string `json:"detail"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
		return outcome{kind: "malformed",
			detail: fmt.Sprintf("status %d with undecodable error envelope", resp.StatusCode)}
	}
	return outcome{kind: env.Error.Code, latency: lat(), detail: env.Error.Detail}
}

// validateResult checks the JSONL success shape: a header line with a
// group count, that many rows, and a done trailer agreeing on the count.
func validateResult(resp *http.Response) error {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return fmt.Errorf("empty body")
	}
	var hdr struct {
		Groups *int `json:"groups"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Groups == nil {
		return fmt.Errorf("bad header %q", sc.Text())
	}
	rows, done := 0, false
	for sc.Scan() {
		if done {
			return fmt.Errorf("data after the done trailer")
		}
		var line struct {
			G    *uint64 `json:"g"`
			Done bool    `json:"done"`
			Rows int     `json:"rows"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("bad line %q", sc.Text())
		}
		if line.Done {
			done = true
			if line.Rows != rows {
				return fmt.Errorf("trailer says %d rows, saw %d", line.Rows, rows)
			}
			continue
		}
		if line.G == nil {
			return fmt.Errorf("row without group key: %q", sc.Text())
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("truncated body: no done trailer after %d rows", rows)
	}
	if rows != *hdr.Groups {
		return fmt.Errorf("header says %d groups, saw %d rows", *hdr.Groups, rows)
	}
	return nil
}

// audit prints the outcome census and decides the exit code.
func audit(outcomes []outcome, elapsed time.Duration, maxP99 time.Duration, minOK int) int {
	counts := map[string]int{}
	var okLats []time.Duration
	var failures []string
	for _, o := range outcomes {
		counts[o.kind]++
		switch {
		case o.kind == "ok":
			okLats = append(okLats, o.latency)
		case expectedCodes[o.kind]:
			// typed overload outcome: fine
		default:
			if len(failures) < 5 {
				failures = append(failures, fmt.Sprintf("%s: %s", o.kind, o.detail))
			}
		}
	}

	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("aggload: %d requests in %v\n", len(outcomes), elapsed.Round(time.Millisecond))
	for _, k := range kinds {
		fmt.Printf("  %-22s %d\n", k, counts[k])
	}

	code := 0
	if p99 := quantile(okLats, 0.99); len(okLats) > 0 {
		fmt.Printf("  p50 %v  p99 %v\n",
			quantile(okLats, 0.50).Round(time.Millisecond), p99.Round(time.Millisecond))
		if maxP99 > 0 && p99 > maxP99 {
			fmt.Printf("aggload: FAIL p99 %v exceeds bound %v\n", p99, maxP99)
			code = 1
		}
	}
	if counts["ok"] < minOK {
		fmt.Printf("aggload: FAIL only %d successes, need %d\n", counts["ok"], minOK)
		code = 1
	}
	if len(failures) > 0 {
		fmt.Printf("aggload: FAIL untyped or malformed outcomes:\n  %s\n",
			strings.Join(failures, "\n  "))
		code = 1
	}
	if code == 0 {
		fmt.Println("aggload: PASS — every outcome typed, bounds held")
	}
	return code
}

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	i := int(q * float64(len(lats)-1))
	return lats[i]
}
