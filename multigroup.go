package cacheagg

// Multi-column and string GROUP BY support, via dictionary encoding
// (internal/dict). The paper's operator — like most column-store
// aggregation kernels — works on 64-bit integer grouping keys; composite
// and string keys are reduced to that setting by encoding each distinct
// key (tuple) as a dense integer, aggregating over the ids, and decoding
// the result's group ids back into the original columns.

import (
	"fmt"

	"cacheagg/internal/dict"
)

// MultiInput is a GROUP BY over several key columns.
type MultiInput struct {
	// GroupBy holds the grouping key columns (all of equal length).
	GroupBy [][]uint64
	// Columns are the aggregate input columns.
	Columns [][]int64
	// Aggregates lists the aggregate output columns to compute.
	Aggregates []AggSpec
}

// MultiResult is the result of AggregateMulti: row r of every column of
// GroupCols (one per input key column) plus row r of every aggregate
// column describe one group.
type MultiResult struct {
	GroupCols [][]uint64
	Aggs      [][]int64
	Stats     Stats

	inner *Result
}

// Len returns the number of groups.
func (r *MultiResult) Len() int {
	if len(r.GroupCols) == 0 {
		return 0
	}
	return len(r.GroupCols[0])
}

// Float returns aggregate column a of group idx as float64 (exact for Avg).
func (r *MultiResult) Float(a, idx int) float64 { return r.inner.Float(a, idx) }

// AggregateMulti executes a GROUP BY over multiple key columns.
//
// The key columns are dictionary-encoded into dense 64-bit ids first; the
// encoding pass is sequential and hash-based, so for very large inputs with
// few columns consider packing keys manually (e.g. two 32-bit keys into one
// uint64) to stay on the operator's fully parallel path.
func AggregateMulti(in MultiInput, opt Options) (*MultiResult, error) {
	if len(in.GroupBy) == 0 {
		return nil, fmt.Errorf("cacheagg: AggregateMulti needs at least one key column")
	}
	d := dict.NewTupleDict(len(in.GroupBy))
	ids, err := d.EncodeColumns(in.GroupBy)
	if err != nil {
		return nil, fmt.Errorf("cacheagg: %w", err)
	}
	res, err := Aggregate(Input{
		GroupBy:    ids,
		Columns:    in.Columns,
		Aggregates: in.Aggregates,
	}, opt)
	if err != nil {
		return nil, err
	}
	return &MultiResult{
		GroupCols: d.DecodeColumns(res.Groups),
		Aggs:      res.Aggs,
		Stats:     res.Stats,
		inner:     res,
	}, nil
}

// StringInput is a GROUP BY over a string key column.
type StringInput struct {
	GroupBy    []string
	Columns    [][]int64
	Aggregates []AggSpec
}

// StringResult is the result of AggregateStrings.
type StringResult struct {
	Groups []string
	Aggs   [][]int64
	Stats  Stats

	inner *Result
}

// Len returns the number of groups.
func (r *StringResult) Len() int { return len(r.Groups) }

// Float returns aggregate column a of group idx as float64 (exact for Avg).
func (r *StringResult) Float(a, idx int) float64 { return r.inner.Float(a, idx) }

// AggregateStrings executes a GROUP BY over a string key column by
// dictionary-encoding the strings into dense ids.
func AggregateStrings(in StringInput, opt Options) (*StringResult, error) {
	d := dict.NewStringDict()
	ids := d.EncodeAll(in.GroupBy)
	res, err := Aggregate(Input{
		GroupBy:    ids,
		Columns:    in.Columns,
		Aggregates: in.Aggregates,
	}, opt)
	if err != nil {
		return nil, err
	}
	return &StringResult{
		Groups: d.Values(res.Groups),
		Aggs:   res.Aggs,
		Stats:  res.Stats,
		inner:  res,
	}, nil
}
