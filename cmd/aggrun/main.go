// Command aggrun executes one aggregation over a dataset — generated on the
// fly or read from a file produced by agggen — with a chosen strategy, and
// prints the result summary plus the execution statistics that drive the
// paper's figures (passes, routine mix, α, switches).
//
// Examples:
//
//	aggrun -dist uniform -n 1048576 -k 65536 -strategy adaptive
//	aggrun -in keys.bin -format binary -strategy hashing-only -stats
//	agggen -dist zipf -n 1000000 -format binary -o /tmp/z.bin && \
//	  aggrun -in /tmp/z.bin -format binary
//	aggrun -n 4194304 -k 4194304 -budget 16777216 -spill -spill-budget 1073741824
//	aggrun -keytype strings -dist zipf -n 1048576 -k 65536 -verify
//	aggrun -keytype composite2 -n 1048576 -k 65536 -routine global
//
// Exit codes are typed so scripts and load harnesses can assert on the
// failure class instead of parsing stderr:
//
//	0  success
//	1  generic failure (bad input file, internal error)
//	2  usage error (unknown flag or flag value)
//	3  memory budget exceeded (-budget too small, and -spill not given)
//	4  spill budget exceeded (-spill-budget too small for the degraded run)
//	5  deadline exceeded (-timeout elapsed)
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"cacheagg"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/external"
	"cacheagg/internal/memgov"
	"cacheagg/internal/trace"
)

// Typed exit codes. Zero and one are the conventional success/failure
// pair, two is what package flag uses for parse errors, and the rest map
// the operator's typed failures one-to-one.
const (
	exitOK          = 0
	exitFailure     = 1
	exitUsage       = 2
	exitMemBudget   = 3
	exitSpillBudget = 4
	exitDeadline    = 5
)

// exitCode classifies an error from run() into the documented exit codes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, external.ErrSpillBudget):
		return exitSpillBudget
	case errors.Is(err, core.ErrMemoryBudget):
		return exitMemBudget
	case errors.Is(err, context.DeadlineExceeded):
		return exitDeadline
	default:
		return exitFailure
	}
}

func parseRoutine(name string) (core.Routine, error) {
	switch name {
	case "auto", "":
		return core.RoutineAuto, nil
	case "partitioned":
		return core.RoutinePartitioned, nil
	case "global":
		return core.RoutineGlobal, nil
	case "sort-spill":
		return core.RoutineSortSpill, nil
	default:
		return 0, fmt.Errorf("unknown routine %q (auto | partitioned | global | sort-spill)", name)
	}
}

func parseStrategy(name string, passes int) (core.Strategy, error) {
	switch name {
	case "adaptive":
		return core.DefaultAdaptive(), nil
	case "hashing-only":
		return core.HashingOnly(), nil
	case "partition-always":
		return core.PartitionAlways(passes), nil
	case "partition-only":
		return core.PartitionOnly(), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q (adaptive | hashing-only | partition-always | partition-only)", name)
	}
}

func main() {
	// All failures — bad flag values, unreadable inputs, timeouts, even a
	// bug-induced panic inside the operator — exit with a one-line error
	// and the documented code for their class, never a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fatal(fmt.Errorf("internal error: %v", r))
		}
	}()
	if err := run(); err != nil {
		fatal(err)
	}
}

func run() error {
	var (
		distName = flag.String("dist", "uniform", "distribution for generated input")
		n        = flag.Int("n", 1<<20, "rows of generated input")
		k        = flag.Uint64("k", 1<<16, "key domain of generated input")
		seed     = flag.Uint64("seed", 1, "seed for generated input")
		theta    = flag.Float64("theta", 0, "zipf skew parameter (0 = generator default)")
		hitFrac  = flag.Float64("hitfrac", 0, "heavy-hitter hot-key row fraction (0 = generator default)")
		window   = flag.Uint64("window", 0, "moving-cluster window size (0 = generator default)")
		plan     = flag.Bool("plan", false, "run the sketch-guided planning pass before execution")
		in       = flag.String("in", "", "read keys from file instead of generating")
		format   = flag.String("format", "text", "input file format: text | binary")
		strat    = flag.String("strategy", "adaptive", "adaptive | hashing-only | partition-always | partition-only")
		routine  = flag.String("routine", "auto", "execution routine: auto | partitioned | global | sort-spill (sort-spill needs -spill and -budget)")
		passes   = flag.Int("passes", 1, "partitioning passes for partition-always")
		workers  = flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 0, "cache budget bytes per worker (0 = 4 MiB)")
		topN     = flag.Int("top", 0, "print the first N result rows")
		verify   = flag.Bool("verify", false, "check the result against a reference aggregation")
		timeout  = flag.Duration("timeout", 0, "abort the aggregation after this long (0 = no limit)")
		traceOut = flag.String("trace", "", "record an execution trace and write it to this file as JSONL")
		budget   = flag.Int64("budget", 0, "memory budget in bytes enforced by a governor (0 = unlimited)")
		spill    = flag.Bool("spill", false, "degrade to the out-of-core path when -budget is exceeded")
		spillCap = flag.Int64("spill-budget", 0, "cap on spill bytes for the degraded run (0 = no cap)")
		keytype  = flag.String("keytype", "uint64", "group-by key shape: uint64 | strings | composite2 (general keys run through the interning layer)")
	)
	flag.Parse()
	if *spill && *budget <= 0 {
		return usageError("-spill requires a positive -budget (nothing to degrade from)")
	}
	if *spillCap != 0 && !*spill {
		return usageError("-spill-budget only applies with -spill")
	}
	switch *keytype {
	case "uint64":
	case "strings", "composite2":
		// General keys run through the public operator (interning + dense
		// aggregation); the flags of the low-level distinct path that it
		// does not expose are usage errors, not silent no-ops.
		switch {
		case *in != "":
			return usageError("-keytype " + *keytype + " generates its own keys; -in is not supported")
		case *spill:
			return usageError("-keytype " + *keytype + " does not support -spill")
		case *plan:
			return usageError("-keytype " + *keytype + " does not support -plan")
		case *traceOut != "":
			return usageError("-keytype " + *keytype + " does not support -trace")
		case *strat != "adaptive":
			return usageError("-keytype " + *keytype + " does not support -strategy")
		}
		dist, err := datagen.ParseDist(*distName)
		if err != nil {
			return err
		}
		return runGeneral(*keytype, datagen.Spec{
			Dist: dist, N: *n, K: *k, Seed: *seed,
			Theta: *theta, HitFraction: *hitFrac, Window: *window,
		}, *routine, *workers, *cache, *budget, *timeout, *topN, *verify)
	default:
		return usageError("unknown -keytype " + *keytype + " (uint64 | strings | composite2)")
	}

	var keys []uint64
	if *in != "" {
		var err error
		keys, err = readKeys(*in, *format)
		if err != nil {
			return err
		}
	} else {
		dist, err := datagen.ParseDist(*distName)
		if err != nil {
			return err
		}
		keys = datagen.Generate(datagen.Spec{
			Dist: dist, N: *n, K: *k, Seed: *seed,
			Theta: *theta, HitFraction: *hitFrac, Window: *window,
		})
	}

	strategy, err := parseStrategy(*strat, *passes)
	if err != nil {
		return err
	}
	rt, err := parseRoutine(*routine)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Strategy:     strategy,
		Workers:      *workers,
		CacheBytes:   *cache,
		CollectStats: true,
		EnablePlan:   *plan,
		Routine:      rt,
	}
	var gov *memgov.Governor
	if *budget > 0 {
		gov = memgov.New(*budget)
		cfg.Governor = gov
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(1 << 16)
		cfg.Tracer = rec
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := core.DistinctContext(ctx, cfg, keys)
	if err != nil && *spill && errors.Is(err, core.ErrMemoryBudget) {
		// The in-memory run hit the -budget wall; rerun out-of-core under
		// the same governor (its reservations were released with the failed
		// run, and the shared high-water mark then spans the whole query).
		return runExternal(ctx, cfg, gov, *budget, *spillCap, keys, start, *topN, *verify)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("aggregation exceeded -timeout %v: %w", *timeout, err)
		}
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("strategy   %s\n", strategy.Name())
	fmt.Printf("rows       %d\n", len(keys))
	fmt.Printf("groups     %d\n", res.Groups())
	fmt.Printf("time       %v (%.1f ns/row)\n", elapsed.Round(time.Microsecond),
		float64(elapsed.Nanoseconds())/float64(max(len(keys), 1)))
	st := res.Stats
	fmt.Printf("passes     %d\n", st.Passes)
	for lvl := 0; lvl < st.Passes; lvl++ {
		fmt.Printf("  level %d  %12d rows  %v worker time\n", lvl,
			st.LevelRows[lvl], time.Duration(st.LevelNanos[lvl]).Round(time.Microsecond))
	}
	fmt.Printf("hashed     %d rows\n", st.HashedRows)
	fmt.Printf("partitioned%12d rows\n", st.PartitionedRows)
	fmt.Printf("tables     %d emitted", st.TablesEmitted)
	if st.TablesEmitted > 0 {
		fmt.Printf(" (mean α %.1f)", st.AlphaSum/float64(st.TablesEmitted))
	}
	fmt.Println()
	fmt.Printf("switches   %d\n", st.Switches)
	fmt.Printf("directemit %d buckets\n", st.DirectEmits)
	fmt.Printf("routine    %s\n", st.Routine)
	if st.GlobalRows > 0 || st.GlobalEscapedRows > 0 {
		fmt.Printf("global     %d rows folded, %d escaped, %d contention events, %d grows\n",
			st.GlobalRows, st.GlobalEscapedRows, st.GlobalContention, st.GlobalGrows)
		if st.GlobalDemotions > 0 {
			fmt.Printf("global     demoted to partitioned mid-run (observed α undershot)\n")
		}
	}
	if st.Planned {
		mode := "hash"
		if st.PlanStartPartition {
			mode = "partition"
		}
		fmt.Printf("plan       sampled %d rows in %v: K̂=%.0f, start=%s\n",
			st.PlanSampleRows, time.Duration(st.PlanNanos).Round(time.Microsecond),
			st.PlanEstimatedK, mode)
		if st.PlanTableRows > 0 {
			fmt.Printf("plan       table pre-sized to %d rows\n", st.PlanTableRows)
		}
		if st.PlanHotKeys > 0 {
			fmt.Printf("plan       %d hot keys (%.1f%% of sample), %d rows bypassed\n",
				st.PlanHotKeys, 100*st.PlanHotMass, st.HotRowsBypassed)
		}
	}

	if rec != nil {
		snap := rec.Snapshot()
		fmt.Printf("trace      %d events", snap.Emitted)
		for p := 0; p < trace.NumPhases; p++ {
			if snap.Phases[p] > 0 {
				fmt.Printf("  %s=%v", trace.Phase(p),
					time.Duration(snap.Phases[p]).Round(time.Microsecond))
			}
		}
		fmt.Println()
		if err := writeTrace(*traceOut, rec); err != nil {
			return err
		}
		fmt.Printf("trace      written to %s\n", *traceOut)
	}

	for i := 0; i < *topN && i < res.Groups(); i++ {
		fmt.Printf("row %d: key=%d hash=%#016x\n", i, res.Keys[i], res.Hashes[i])
	}

	if *verify {
		if err := verifyDistinct(keys, res.Keys); err != nil {
			return err
		}
		fmt.Println("verify     OK (matches reference aggregation)")
	}
	return nil
}

// runGeneral is the general-key mode of aggrun: string or composite keys
// generated with the same distribution machinery, interned to dense ids
// through the public operator, counted per group, and decoded back for
// display and verification. It exercises the full encode → aggregate →
// decode path the library exposes as AggregateGeneral.
func runGeneral(keytype string, spec datagen.Spec, routineName string,
	workers, cache int, budget int64, timeout time.Duration, topN int, verify bool) error {
	rt, err := parseRoutine(routineName)
	if err != nil {
		return err
	}
	var gcols []cacheagg.KeyColumn
	switch keytype {
	case "strings":
		gcols = []cacheagg.KeyColumn{{Strings: datagen.GenerateStrings(spec)}}
	case "composite2":
		cc := datagen.GenerateComposite(spec, 2)
		gcols = []cacheagg.KeyColumn{{Uint64s: cc[0]}, {Uint64s: cc[1]}}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := cacheagg.AggregateGeneralContext(ctx, cacheagg.GeneralInput{
		GroupBy:    gcols,
		Aggregates: []cacheagg.AggSpec{{Func: cacheagg.Count}},
	}, cacheagg.Options{
		Workers:           workers,
		CacheBytes:        cache,
		MemoryBudgetBytes: budget,
		CollectStats:      true,
		Routine:           cacheagg.Routine(rt),
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("aggregation exceeded -timeout %v: %w", timeout, err)
		}
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("keytype    %s\n", keytype)
	fmt.Printf("rows       %d\n", spec.N)
	fmt.Printf("groups     %d\n", res.Len())
	fmt.Printf("time       %v (%.1f ns/row)\n", elapsed.Round(time.Microsecond),
		float64(elapsed.Nanoseconds())/float64(max(spec.N, 1)))
	fmt.Printf("interned   %d keys, %d dictionary bytes\n",
		res.Stats.InternedKeys, res.Stats.InternBytes)
	fmt.Printf("encode     %v (%.1f ns/row)\n",
		time.Duration(res.Stats.EncodeNanos).Round(time.Microsecond),
		float64(res.Stats.EncodeNanos)/float64(max(spec.N, 1)))
	fmt.Printf("routine    %s\n", res.Stats.Routine)

	for i := 0; i < topN && i < res.Len(); i++ {
		fmt.Printf("row %d:", i)
		for c := range res.GroupCols {
			col := &res.GroupCols[c]
			switch {
			case col.IsNull(i):
				fmt.Printf(" NULL")
			case col.Type() == cacheagg.KeyString:
				fmt.Printf(" %q", col.Strings[i])
			default:
				fmt.Printf(" %d", col.Uint64s[i])
			}
		}
		fmt.Printf("  count=%d\n", res.Aggs[0][i])
	}

	if verify {
		if err := verifyGeneral(gcols, res); err != nil {
			return err
		}
		fmt.Println("verify     OK (matches map-keyed reference aggregation)")
	}
	return nil
}

// verifyGeneral checks a general-key count result against a plain
// map-keyed reference built from the original key columns.
func verifyGeneral(gcols []cacheagg.KeyColumn, res *cacheagg.GeneralResult) error {
	serialize := func(cols []cacheagg.KeyColumn, row int) string {
		s := ""
		for c := range cols {
			col := &cols[c]
			switch {
			case col.IsNull(row):
				s += "N|"
			case col.Type() == cacheagg.KeyString:
				s += "s:" + strconv.Quote(col.Strings[row]) + "|"
			default:
				s += "u:" + strconv.FormatUint(col.Uint64s[row], 10) + "|"
			}
		}
		return s
	}
	ref := make(map[string]int64)
	for i := 0; i < gcols[0].Len(); i++ {
		ref[serialize(gcols, i)]++
	}
	if res.Len() != len(ref) {
		return fmt.Errorf("verify: %d groups, reference has %d", res.Len(), len(ref))
	}
	for r := 0; r < res.Len(); r++ {
		k := serialize(res.GroupCols, r)
		want, ok := ref[k]
		if !ok {
			return fmt.Errorf("verify: phantom group %s", k)
		}
		if res.Aggs[0][r] != want {
			return fmt.Errorf("verify: group %s count %d, want %d", k, res.Aggs[0][r], want)
		}
	}
	return nil
}

// runExternal is the degraded continuation of run(): the in-memory attempt
// exceeded -budget and -spill was given, so the same distinct query reruns
// through the out-of-core operator, spilling to disk under the same
// governor. A too-small -spill-budget surfaces as ErrSpillBudget (exit 4).
func runExternal(ctx context.Context, cfg core.Config, gov *memgov.Governor,
	budget, spillCap int64, keys []uint64, start time.Time, topN int, verify bool) error {
	ecfg := external.Config{
		MemoryBudgetBytes: budget,
		Governor:          gov,
		MaxSpillBytes:     spillCap,
		Core:              cfg,
	}
	// The governor hook belongs to the external run now; the core tracer
	// (if any) rides along inside cfg.
	ecfg.Core.Governor = nil
	res, err := external.AggregateContext(ctx, ecfg, &core.Input{Keys: keys})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("degraded aggregation exceeded -timeout: %w", err)
		}
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("mode       external (degraded: -budget %d exceeded in memory)\n", budget)
	fmt.Printf("rows       %d\n", len(keys))
	fmt.Printf("groups     %d\n", res.Groups())
	fmt.Printf("time       %v (%.1f ns/row)\n", elapsed.Round(time.Microsecond),
		float64(elapsed.Nanoseconds())/float64(max(len(keys), 1)))
	fmt.Printf("spilled    %d rows, %d bytes (merge depth %d, %d resident, %d evicted)\n",
		res.Stats.SpilledRows, res.Stats.SpilledBytes, res.Stats.MergeLevels,
		res.Stats.ResidentPartitions, res.Stats.EvictedPartitions)
	fmt.Printf("highwater  %d bytes\n", gov.HighWater())
	for i := 0; i < topN && i < res.Groups(); i++ {
		fmt.Printf("row %d: key=%d\n", i, res.Keys[i])
	}
	if verify {
		if err := verifyDistinct(keys, res.Keys); err != nil {
			return err
		}
		fmt.Println("verify     OK (matches reference aggregation)")
	}
	return nil
}

// usageError mimics package flag's handling of bad flag values: message to
// stderr, usage, exit 2.
func usageError(msg string) error {
	fmt.Fprintln(os.Stderr, "aggrun:", msg)
	flag.Usage()
	os.Exit(exitUsage)
	return nil
}

// verifyDistinct checks a distinct result's keys against a map reference.
func verifyDistinct(keys, resKeys []uint64) error {
	ref := make(map[uint64]struct{}, len(resKeys))
	for _, k := range keys {
		ref[k] = struct{}{}
	}
	if len(resKeys) != len(ref) {
		return fmt.Errorf("verify: %d groups, reference has %d", len(resKeys), len(ref))
	}
	seen := make(map[uint64]struct{}, len(resKeys))
	for _, k := range resKeys {
		if _, dup := seen[k]; dup {
			return fmt.Errorf("verify: duplicate group %d", k)
		}
		seen[k] = struct{}{}
		if _, ok := ref[k]; !ok {
			return fmt.Errorf("verify: phantom group %d", k)
		}
	}
	return nil
}

func readKeys(path, format string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var keys []uint64
	switch format {
	case "text":
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			v, err := strconv.ParseUint(sc.Text(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", sc.Text(), err)
			}
			keys = append(keys, v)
		}
		return keys, sc.Err()
	case "binary":
		r := bufio.NewReaderSize(f, 1<<20)
		var buf [8]byte
		for {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				if err == io.EOF {
					return keys, nil
				}
				return nil, err
			}
			keys = append(keys, binary.LittleEndian.Uint64(buf[:]))
		}
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

// writeTrace dumps the recorder's retained events to path as JSONL.
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := trace.WriteJSONL(w, rec.Events()); err != nil {
		f.Close()
		return fmt.Errorf("-trace: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("-trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggrun:", err)
	os.Exit(exitCode(err))
}
