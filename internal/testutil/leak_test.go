package testutil

import (
	"sync"
	"testing"
)

// TestVerifyNoLeaksPassesWhenClean exercises the happy path: goroutines
// that exit before the test ends must not trip the checker.
func TestVerifyNoLeaksPassesWhenClean(t *testing.T) {
	VerifyNoLeaks(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// TestVerifyNoLeaksDetectsLeak runs the checker against a deliberately
// leaked goroutine on a sacrificial sub-test recorder, asserting that it
// reports the leak (without failing this test).
func TestVerifyNoLeaksDetectsLeak(t *testing.T) {
	block := make(chan struct{})
	defer close(block)

	rec := &recorder{TB: t}
	VerifyNoLeaks(rec)
	go func() { <-block }() // alive past the cleanup deadline below
	rec.runCleanups()
	if !rec.failed {
		t.Fatal("checker missed a leaked goroutine")
	}
}

// recorder captures Errorf and cleanups instead of failing the real test.
type recorder struct {
	testing.TB
	failed   bool
	cleanups []func()
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) { r.failed = true }

func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }

func (r *recorder) runCleanups() {
	for _, f := range r.cleanups {
		f()
	}
}
