package cachesim

import "fmt"

// AssocCache is a set-associative LRU cache — the realistic refinement of
// the fully-associative model Cache. The external memory model (and the
// paper's analysis) assumes an ideal cache; real L2/L3 caches are 8–16-way
// set associative, which adds conflict misses when an access pattern maps
// many hot lines into the same set. Comparing the two models quantifies
// how much of the idealized analysis survives on set-associative hardware
// (tests show the partitioning access pattern is nearly conflict-free —
// one more reason software write-combining works).
type AssocCache struct {
	lineWords int
	sets      int
	ways      int

	// lines[set*ways+way] holds the line address (-1 = empty);
	// age[set*ways+way] is a per-set LRU stamp.
	lines []int64
	dirty []bool
	age   []uint64
	clock uint64

	hits       int64
	misses     int64
	writebacks int64
}

// NewAssocCache creates a set-associative cache of capacityWords words in
// lines of lineWords words, organized as ways-way sets. capacityWords /
// (lineWords·ways) must be a power of two (the set count).
func NewAssocCache(capacityWords, lineWords, ways int) *AssocCache {
	if lineWords <= 0 || ways <= 0 || capacityWords < lineWords*ways {
		panic(fmt.Sprintf("cachesim: invalid assoc geometry %d/%d/%d", capacityWords, lineWords, ways))
	}
	sets := capacityWords / (lineWords * ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: set count %d must be a power of two", sets))
	}
	c := &AssocCache{
		lineWords: lineWords,
		sets:      sets,
		ways:      ways,
		lines:     make([]int64, sets*ways),
		dirty:     make([]bool, sets*ways),
		age:       make([]uint64, sets*ways),
	}
	for i := range c.lines {
		c.lines[i] = -1
	}
	return c
}

// Hits returns the number of accesses served from the cache.
func (c *AssocCache) Hits() int64 { return c.hits }

// Misses returns the number of lines fetched.
func (c *AssocCache) Misses() int64 { return c.misses }

// Writebacks returns the number of dirty lines evicted.
func (c *AssocCache) Writebacks() int64 { return c.writebacks }

// Transfers returns misses plus writebacks.
func (c *AssocCache) Transfers() int64 { return c.misses + c.writebacks }

// Access simulates one word access.
func (c *AssocCache) Access(wordAddr int64, write bool) {
	line := wordAddr / int64(c.lineWords)
	set := int(line & int64(c.sets-1))
	base := set * c.ways
	c.clock++

	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.lines[i] == line {
			c.hits++
			c.age[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return
		}
		if c.lines[i] == -1 {
			// Prefer an empty way; mark it oldest-possible.
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.misses++
	if c.lines[victim] != -1 && c.dirty[victim] {
		c.writebacks++
	}
	c.lines[victim] = line
	c.dirty[victim] = write
	c.age[victim] = c.clock
}

// Flush writes back all dirty lines and empties the cache.
func (c *AssocCache) Flush() {
	for i := range c.lines {
		if c.lines[i] != -1 && c.dirty[i] {
			c.writebacks++
		}
		c.lines[i] = -1
		c.dirty[i] = false
	}
}

// CompareAssociativity runs the same sequential-scan-plus-scatter access
// trace against a fully-associative and a k-way cache of equal size and
// returns both transfer counts. Used by tests and docs to quantify the
// idealization error of the model.
func CompareAssociativity(capacityWords, lineWords, ways int, trace []int64) (full, assoc int64) {
	fc := NewCache(capacityWords, lineWords)
	ac := NewAssocCache(capacityWords, lineWords, ways)
	for _, addr := range trace {
		write := addr < 0
		if write {
			addr = -addr - 1
		}
		fc.Access(addr, write)
		ac.Access(addr, write)
	}
	fc.Flush()
	ac.Flush()
	return fc.Transfers(), ac.Transfers()
}
