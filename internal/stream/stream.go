// Package stream implements durable push-based streaming aggregation on
// top of the batch operator: a StreamAggregator accepts blocks of
// (key, columns) rows through a bounded, memory-governed ingest queue,
// folds them into an in-memory epoch accumulator with sorted/clustered-run
// early aggregation, and periodically seals the accumulator into an epoch
// checkpoint — partial aggregation state written through the external
// package's CRC-checked block codec, committed by an atomically-renamed,
// checksummed manifest. Resume reconstructs the stream from its checkpoint
// directory after a crash: epochs the manifest never committed are rolled
// back, corrupt state surfaces as a typed error, and ingest continues from
// the last sealed epoch.
//
// # Epoch state machine
//
//	       Push (fold into accumulator)
//	          │
//	┌────────▼────────┐  seal (size/budget/Checkpoint/Finish)
//	│  OPEN epoch e+1 │ ──────────────────────────────┐
//	└─────────────────┘                               │
//	         ▲             write epoch-(e+1).ckpt     │
//	         │             fsync                      │
//	         │             write MANIFEST.tmp, fsync  │
//	         │             rename → MANIFEST          │
//	         │             fsync directory            │
//	         └───── accumulator reset ◄───────────────┘
//
// The rename is the commit point. A crash before it leaves a torn epoch
// file that Resume deletes (state rolls back to the previous manifest); a
// crash after it recovers the epoch. Producers replay un-acknowledged
// input from Progress().RowsDurable.
//
// # Backpressure contract
//
// Push blocks while the bounded queue is full or the memory governor has
// no room for the block, honoring its context; TryPush never blocks and
// returns a *BackpressureError (wrapping ErrBackpressure) carrying a retry
// hint instead. When the governor refuses a block while the accumulator
// holds reserved memory, the aggregator requests an early seal — releasing
// the accumulator's reservation is what un-wedges the budget — so a
// starved stream degrades to smaller epochs instead of deadlocking.
package stream

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/external"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/trace"
)

// Typed sentinels. Every failure mode of the streaming path wraps one of
// these (or context/memgov/external sentinels), so callers can dispatch
// without string matching.
var (
	// ErrBackpressure is wrapped by *BackpressureError when TryPush finds
	// the ingest queue or the memory budget full.
	ErrBackpressure = errors.New("stream: backpressure")
	// ErrClosed reports an operation on a closed aggregator.
	ErrClosed = errors.New("stream: aggregator closed")
	// ErrFinished reports a Push/Resume on a finished stream.
	ErrFinished = errors.New("stream: already finished")
	// ErrCorruptCheckpoint is wrapped by every structural failure of the
	// checkpoint state: a damaged manifest, a manifest-listed epoch file
	// that is missing, truncated or fails its checksums, or a record
	// count that disagrees with the manifest.
	ErrCorruptCheckpoint = errors.New("stream: corrupt checkpoint")
	// ErrNoCheckpoint reports a Resume on a directory with no manifest.
	ErrNoCheckpoint = errors.New("stream: no checkpoint")
	// ErrSpecMismatch reports a Resume whose Options.Specs disagree with
	// the manifest's recorded aggregate plan.
	ErrSpecMismatch = errors.New("stream: aggregate specs do not match checkpoint")
)

// BackpressureError is the typed refusal of TryPush (and of Push when its
// context expires first): the stream is healthy but full. RetryAfter is
// the producer's hint — retry no sooner than this.
type BackpressureError struct {
	// Reason is "queue" (the bounded block queue is full) or "budget"
	// (the memory governor cannot admit the block).
	Reason string
	// RetryAfter is the suggested backoff before the next attempt.
	RetryAfter time.Duration
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("stream: backpressure (%s full), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrBackpressure) true for every BackpressureError.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// Block is one pushed batch of rows: a key column plus the value columns
// the aggregate specs refer to. All slices must have equal length.
type Block struct {
	Keys []uint64
	Cols [][]int64
}

// Rows returns the number of rows in the block.
func (b Block) Rows() int { return len(b.Keys) }

// Options configures Begin and Resume.
type Options struct {
	// Dir is the checkpoint directory — the stream's durable identity.
	// Begin requires it to hold no manifest; Resume requires one.
	Dir string
	// Specs are the aggregates computed over every pushed block. Resume
	// may leave them nil to adopt the manifest's recorded specs.
	Specs []agg.Spec
	// QueueDepth bounds the ingest queue in blocks; <= 0 selects 16.
	QueueDepth int
	// EpochMaxRows seals the open epoch after this many ingested rows;
	// <= 0 selects 1 << 18.
	EpochMaxRows int64
	// MemoryBudgetBytes bounds the bytes held by queued blocks plus the
	// epoch accumulator, enforced through Governor (created here when
	// nil). 0 means unlimited.
	MemoryBudgetBytes int64
	// Governor, when non-nil, is used instead of a fresh governor built
	// from MemoryBudgetBytes, so one ledger can span several streams.
	Governor *memgov.Governor
	// FS is the checkpoint I/O backend; nil selects the real filesystem.
	// It is wrapped in a faultfs.Retry so transient faults are absorbed.
	FS faultfs.FS
	// Retry configures the transient-fault retry policy; zero fields
	// select faultfs.DefaultRetryPolicy.
	Retry faultfs.RetryPolicy
	// Tracer, when non-nil, receives epoch-seal, checkpoint-write,
	// recover and backpressure events plus the events of snapshot merges.
	Tracer trace.Tracer
	// RetryHint is the backoff suggested by BackpressureError; <= 0
	// selects 10ms.
	RetryHint time.Duration
	// Core configures the in-memory operator used to merge epoch partials
	// for Snapshot/Finish (workers, cache size).
	Core core.Config
	// NoSync skips every fsync (epoch files, manifests, directory).
	// Tests and benchmarks only: a NoSync stream survives process
	// crashes in practice but not power loss.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.EpochMaxRows <= 0 {
		o.EpochMaxRows = 1 << 18
	}
	if o.RetryHint <= 0 {
		o.RetryHint = 10 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	return o
}

// Stats is a point-in-time census of the stream's work.
type Stats struct {
	RowsIngested         int64 // raw rows folded into accumulators
	BlocksIngested       int64
	RunsDetected         int64 // sorted/clustered runs of >= 2 equal keys
	RunRows              int64 // rows folded through the run fast path
	EpochsSealed         int64
	CheckpointBytes      int64 // bytes written to epoch files and manifests
	Backpressure         int64 // refused TryPushes + Pushes that had to wait
	EarlySeals           int64 // epochs sealed by memory pressure, not row count
	Snapshots            int64
	SnapshotSpills       int64 // snapshot merges degraded to the external engine
	RecoveredEpochs      int64 // sealed epochs restored by Resume
	RecoveredRows        int64 // durable raw rows restored by Resume
	TornEpochsRolledBack int64 // un-manifested epoch files deleted by Resume
}

// Progress is the durable high-water mark producers ack against.
type Progress struct {
	// Epoch is the last sealed epoch's sequence number (0 = none).
	Epoch uint64
	// RowsDurable is the count of raw rows folded into sealed epochs: a
	// producer that crashes replays everything after this offset.
	RowsDurable uint64
	// BlocksDurable is the count of pushed blocks fully covered by
	// sealed epochs.
	BlocksDurable uint64
	// RowsBuffered is the count of raw rows folded into the open (not
	// yet durable) accumulator. Queued, un-folded blocks are not
	// included.
	RowsBuffered int64
}

// Result is a finalized aggregate snapshot, deterministically ordered by
// (hash, key) so equal streams produce bit-identical results regardless
// of arrival order, epoch boundaries, or crash/resume history.
type Result struct {
	Keys   []uint64
	Hashes []uint64
	// Aggs has one column per spec: integer result (truncated for AVG).
	Aggs [][]int64
	// AggsFloat has one column per spec: exact float result for AVG,
	// widened integer otherwise.
	AggsFloat [][]float64
	// Epochs is how many sealed epochs the snapshot covers (the open
	// accumulator is always included on top).
	Epochs int
}

// Groups returns the number of groups.
func (r *Result) Groups() int { return len(r.Keys) }

// bytesPerGroup estimates the resident cost of one accumulator group:
// key + partial words + map entry overhead.
func bytesPerGroup(width int) int64 { return int64(8 + 8*width + 48) }

// Aggregator is the durable streaming aggregation session. All methods
// are safe for concurrent use; blocks and control operations are applied
// in one total order by a single consumer goroutine.
type Aggregator struct {
	opts   Options
	plan   *external.Plan
	specs  []agg.Spec
	fs     faultfs.FS // retry-wrapped
	baseFS faultfs.FS
	gov    *memgov.Governor
	ownGov bool // governor created here: drain-to-zero is ours to assert
	tr     trace.Tracer
	dir    string

	ch   chan msg
	done chan struct{}

	// sendMu serializes senders (RLock) against lifecycle flips (Lock):
	// once closed is set under the write lock, nothing new can enter ch,
	// so everything queued behind the final control message is control.
	sendMu sync.RWMutex
	closed bool

	failMu  sync.Mutex
	failErr error

	// Consumer-goroutine state (unsynchronized: single owner).
	acc     accum
	epoch   uint64
	man     manifest
	pending int64 // pushed blocks not yet covered by a sealed epoch

	statMu sync.Mutex
	stats  Stats
	prog   Progress
}

// accum is the open epoch's accumulator: group index in first-appearance
// order with one uint64 partial-state word per decomposed column.
type accum struct {
	idx      map[uint64]int
	keys     []uint64
	parts    [][]uint64
	rows     int64 // raw rows folded this epoch
	resBytes int64 // bytes reserved with the governor
}

func (a *accum) reset(width int) {
	a.idx = make(map[uint64]int, 1024)
	a.keys = a.keys[:0]
	if a.parts == nil {
		a.parts = make([][]uint64, width)
	}
	for c := range a.parts {
		a.parts[c] = a.parts[c][:0]
	}
	a.rows = 0
	a.resBytes = 0
}

type ctlOp int

const (
	ctlSeal ctlOp = iota
	ctlSnapshot
	ctlFinish
	ctlClose
)

type ctlReply struct {
	epoch uint64
	res   *Result
	err   error
}

type msg struct {
	// Exactly one of push/ctl is set.
	push      *Block
	pushBytes int64
	ctl       ctlOp
	window    int
	reply     chan ctlReply // nil for fire-and-forget control (pressure seals)
}

// Begin creates a new durable stream in opts.Dir, which must not already
// hold a checkpoint manifest.
func Begin(opts Options) (*Aggregator, error) {
	opts = opts.withDefaults()
	if err := validateSpecs(opts.Specs); err != nil {
		return nil, err
	}
	a, err := newAggregator(opts)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(a.dir, manifestName)); err == nil {
		return nil, fmt.Errorf("stream: Begin(%s): checkpoint manifest already present (use Resume)", a.dir)
	}
	a.man = manifest{Specs: opts.Specs}
	a.start()
	return a, nil
}

// newAggregator builds the shared skeleton of Begin and Resume: directory,
// filesystem stack, governor, plan. It does not start the consumer.
func newAggregator(opts Options) (*Aggregator, error) {
	if opts.Dir == "" {
		return nil, errors.New("stream: Options.Dir is required (the stream's durable identity)")
	}
	if opts.MemoryBudgetBytes < 0 {
		return nil, fmt.Errorf("stream: MemoryBudgetBytes is negative (%d); use 0 for unlimited", opts.MemoryBudgetBytes)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: create checkpoint dir: %w", err)
	}
	gov := opts.Governor
	own := false
	if gov == nil {
		gov = memgov.New(opts.MemoryBudgetBytes)
		own = true
	}
	a := &Aggregator{
		opts:   opts,
		specs:  opts.Specs,
		baseFS: opts.FS,
		fs:     faultfs.NewRetry(opts.FS, opts.Retry),
		gov:    gov,
		ownGov: own,
		tr:     opts.Tracer,
		dir:    opts.Dir,
		ch:     make(chan msg, opts.QueueDepth),
		done:   make(chan struct{}),
	}
	if opts.Specs != nil {
		a.plan = external.BuildPlan(opts.Specs)
	}
	return a, nil
}

// start finalizes the plan-dependent state and launches the consumer.
func (a *Aggregator) start() {
	a.acc.reset(a.plan.Width())
	a.statMu.Lock()
	a.prog.Epoch = a.epoch
	a.prog.RowsDurable = a.man.RowsDurable
	a.prog.BlocksDurable = a.man.BlocksDurable
	a.statMu.Unlock()
	go a.run()
}

func validateSpecs(specs []agg.Spec) error {
	if len(specs) == 0 {
		return errors.New("stream: at least one aggregate spec is required")
	}
	for _, s := range specs {
		if !s.Kind.Valid() {
			return fmt.Errorf("stream: invalid aggregate kind %d", int(s.Kind))
		}
		if s.Col < 0 {
			return fmt.Errorf("stream: negative aggregate column %d", s.Col)
		}
	}
	return nil
}

// validateBlock rejects structurally broken blocks before they enter the
// queue, so the consumer never sees one.
func (a *Aggregator) validateBlock(b Block) error {
	for c, col := range b.Cols {
		if len(col) != len(b.Keys) {
			return fmt.Errorf("stream: block column %d has %d rows, keys have %d", c, len(col), len(b.Keys))
		}
	}
	for _, s := range a.specs {
		if s.Kind != agg.Count && s.Col >= len(b.Cols) {
			return fmt.Errorf("stream: %s needs column %d, block has %d", s, s.Col, len(b.Cols))
		}
	}
	return nil
}

func blockBytes(b Block) int64 {
	return int64(8*len(b.Keys)) + int64(8*len(b.Keys)*len(b.Cols))
}

// loadErr returns the stream's sticky failure, if any.
func (a *Aggregator) loadErr() error {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	return a.failErr
}

func (a *Aggregator) fail(err error) {
	a.failMu.Lock()
	if a.failErr == nil {
		a.failErr = err
	}
	a.failMu.Unlock()
	// The open accumulator is dead: its rows were never acknowledged as
	// durable, so producers replay them after Resume. Return its memory.
	a.releaseAcc()
}

func (a *Aggregator) releaseAcc() {
	if a.acc.resBytes > 0 {
		a.gov.Release(a.acc.resBytes)
	}
	a.acc.reset(a.plan.Width())
}

// backpressure builds the typed refusal and records the event.
func (a *Aggregator) backpressure(reason string) error {
	a.statMu.Lock()
	a.stats.Backpressure++
	a.statMu.Unlock()
	if a.tr != nil {
		a.tr.Emit(trace.KindBackpressure, 0, 0, int64(len(a.ch)), 1)
	}
	return &BackpressureError{Reason: reason, RetryAfter: a.opts.RetryHint}
}

// requestSeal asks the consumer for an early seal without blocking: when
// the queue is full the consumer is already busy and will release memory
// soon anyway.
func (a *Aggregator) requestSeal() {
	select {
	case a.ch <- msg{ctl: ctlSeal}:
	default:
	}
}

// Push enqueues one block, blocking until the queue and the memory budget
// admit it or ctx is done. The block's slices must not be mutated by the
// caller afterwards. A nil error means the block WILL be folded (barring
// a crash — it is durable only once Progress().RowsDurable covers it).
func (a *Aggregator) Push(ctx context.Context, b Block) error {
	return a.push(ctx, b, true)
}

// TryPush is Push without blocking: when the queue or the budget is full
// it returns a *BackpressureError immediately.
func (a *Aggregator) TryPush(b Block) error {
	return a.push(context.Background(), b, false)
}

func (a *Aggregator) push(ctx context.Context, b Block, wait bool) error {
	if err := a.validateBlock(b); err != nil {
		return err
	}
	if b.Rows() == 0 {
		return nil
	}
	a.sendMu.RLock()
	defer a.sendMu.RUnlock()
	if a.closed {
		return ErrClosed
	}
	if err := a.loadErr(); err != nil {
		return err
	}
	bytes := blockBytes(b)
	if budget := a.gov.Budget(); budget > 0 && bytes > budget {
		return a.gov.BudgetError("stream: ingest block", bytes)
	}
	if !a.gov.TryReserve(bytes) {
		// The accumulator's reservation is what crowds the budget;
		// sealing it is the release valve.
		a.requestSeal()
		if !wait {
			return a.backpressure("budget")
		}
		a.statMu.Lock()
		a.stats.Backpressure++
		a.statMu.Unlock()
		if a.tr != nil {
			a.tr.Emit(trace.KindBackpressure, 0, 0, int64(len(a.ch)), 1)
		}
		if err := a.gov.TryReserveOrWait(ctx, bytes); err != nil {
			return err
		}
	}
	m := msg{push: &b, pushBytes: bytes}
	select {
	case a.ch <- m:
		return nil
	default:
	}
	// Queue full: a refusal for TryPush, a counted stall for Push.
	if !wait {
		a.gov.Release(bytes)
		return a.backpressure("queue")
	}
	a.statMu.Lock()
	a.stats.Backpressure++
	a.statMu.Unlock()
	if a.tr != nil {
		a.tr.Emit(trace.KindBackpressure, 0, 0, int64(len(a.ch)), 1)
	}
	select {
	case a.ch <- m:
		return nil
	case <-ctx.Done():
		a.gov.Release(bytes)
		return ctx.Err()
	}
}

// control round-trips one control operation through the consumer, keeping
// its position in the ingest order.
func (a *Aggregator) control(ctx context.Context, op ctlOp, window int, flip bool) (ctlReply, error) {
	if flip {
		a.sendMu.Lock()
		if a.closed {
			a.sendMu.Unlock()
			return ctlReply{}, ErrClosed
		}
		a.closed = true
		defer a.sendMu.Unlock()
	} else {
		a.sendMu.RLock()
		if a.closed {
			a.sendMu.RUnlock()
			return ctlReply{}, ErrClosed
		}
		defer a.sendMu.RUnlock()
	}
	reply := make(chan ctlReply, 1)
	select {
	case a.ch <- msg{ctl: op, window: window, reply: reply}:
	case <-ctx.Done():
		return ctlReply{}, ctx.Err()
	}
	select {
	case r := <-reply:
		return r, r.err
	case <-ctx.Done():
		// The operation is queued and will execute; only the caller
		// stops waiting.
		return ctlReply{}, ctx.Err()
	}
}

// Checkpoint seals the open epoch (after folding everything queued ahead
// of it) and returns the sealed epoch's sequence number. Sealing an empty
// accumulator is a no-op that returns the current epoch.
func (a *Aggregator) Checkpoint(ctx context.Context) (uint64, error) {
	r, err := a.control(ctx, ctlSeal, 0, false)
	return r.epoch, err
}

// Snapshot merges the last `window` sealed epochs plus the open
// accumulator into a finalized result (window <= 0 means all epochs): the
// stream's rolling-window query. Ingest ordered before the call is
// included; ingest ordered after is not.
func (a *Aggregator) Snapshot(ctx context.Context, window int) (*Result, error) {
	r, err := a.control(ctx, ctlSnapshot, window, false)
	return r.res, err
}

// Finish seals the open epoch, marks the manifest finished, returns the
// final result over all epochs and shuts the stream down. After Finish
// every method returns ErrClosed (and Resume on the directory returns
// ErrFinished).
func (a *Aggregator) Finish(ctx context.Context) (*Result, error) {
	r, err := a.control(ctx, ctlFinish, 0, true)
	return r.res, err
}

// Close shuts the stream down without sealing: buffered rows are folded
// then dropped with the open accumulator (durable state keeps the last
// sealed epoch; producers replay from Progress().RowsDurable after
// Resume). Safe to call more than once and after Finish.
func (a *Aggregator) Close() error {
	a.sendMu.Lock()
	if a.closed {
		a.sendMu.Unlock()
		<-a.done
		return nil
	}
	a.closed = true
	a.ch <- msg{ctl: ctlClose}
	a.sendMu.Unlock()
	<-a.done
	return nil
}

// Stats returns a copy of the stream's counters.
func (a *Aggregator) Stats() Stats {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.stats
}

// Progress returns the durable high-water mark.
func (a *Aggregator) Progress() Progress {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.prog
}

// Specs returns the stream's aggregate specs (Resume may have adopted
// them from the manifest).
func (a *Aggregator) Specs() []agg.Spec { return a.specs }

// Dir returns the checkpoint directory.
func (a *Aggregator) Dir() string { return a.dir }

// ---------------------------------------------------------------------------
// Consumer.

// run is the single consumer goroutine: it owns the accumulator and the
// manifest, applying blocks and control operations in arrival order.
func (a *Aggregator) run() {
	defer close(a.done)
	for m := range a.ch {
		switch {
		case m.push != nil:
			if a.loadErr() != nil {
				a.gov.Release(m.pushBytes)
				continue
			}
			a.fold(*m.push)
			a.gov.Release(m.pushBytes)
			if err := a.maybeSeal(); err != nil {
				a.fail(err)
			}
		case m.ctl == ctlSeal:
			ep, err := a.sealChecked()
			if m.reply != nil {
				m.reply <- ctlReply{epoch: ep, err: err}
			}
		case m.ctl == ctlSnapshot:
			res, err := a.snapshot(m.window)
			m.reply <- ctlReply{res: res, err: err}
		case m.ctl == ctlFinish:
			res, err := a.finish()
			m.reply <- ctlReply{res: res, err: err}
			a.releaseAcc()
			return
		case m.ctl == ctlClose:
			a.releaseAcc()
			return
		}
	}
}

// fold merges one block into the accumulator, one map operation per run
// of equal consecutive keys: on sorted or clustered input whole groups
// collapse before touching the index (in-stream early aggregation).
func (a *Aggregator) fold(b Block) {
	acc := &a.acc
	dec := a.plan.Dec
	width := len(dec)
	groupsBefore := len(acc.keys)
	n := len(b.Keys)
	var runs, runRows int64
	for i := 0; i < n; {
		k := b.Keys[i]
		j := i + 1
		for j < n && b.Keys[j] == k {
			j++
		}
		s, ok := acc.idx[k]
		if !ok {
			s = len(acc.keys)
			acc.idx[k] = s
			acc.keys = append(acc.keys, k)
			for c := 0; c < width; c++ {
				acc.parts[c] = append(acc.parts[c], 0)
			}
			var st [1]uint64
			for c := 0; c < width; c++ {
				sp := dec[c]
				st[0] = acc.parts[c][s]
				first := true
				for r := i; r < j; r++ {
					v := int64(0)
					if sp.Kind != agg.Count {
						v = b.Cols[sp.Col][r]
					}
					if first {
						sp.Kind.Init(st[:], v)
						first = false
					} else {
						sp.Kind.Fold(st[:], v)
					}
				}
				acc.parts[c][s] = st[0]
			}
		} else {
			var st [1]uint64
			for c := 0; c < width; c++ {
				sp := dec[c]
				st[0] = acc.parts[c][s]
				for r := i; r < j; r++ {
					v := int64(0)
					if sp.Kind != agg.Count {
						v = b.Cols[sp.Col][r]
					}
					sp.Kind.Fold(st[:], v)
				}
				acc.parts[c][s] = st[0]
			}
		}
		if j-i >= 2 {
			runs++
			runRows += int64(j - i)
		}
		i = j
	}
	acc.rows += int64(n)
	a.pending++
	if grown := len(acc.keys) - groupsBefore; grown > 0 {
		delta := int64(grown) * bytesPerGroup(width)
		// Reserve unconditionally: the groups are already materialized.
		// The budget check happens at the block boundary (maybeSeal).
		a.gov.Reserve(delta)
		acc.resBytes += delta
	}
	a.statMu.Lock()
	a.stats.RowsIngested += int64(n)
	a.stats.BlocksIngested++
	a.stats.RunsDetected += runs
	a.stats.RunRows += runRows
	a.prog.RowsBuffered = acc.rows
	a.statMu.Unlock()
}

// maybeSeal seals when the open epoch crossed the row threshold or the
// accumulator pushed the governor over budget (pressure seal).
func (a *Aggregator) maybeSeal() error {
	if a.acc.rows >= a.opts.EpochMaxRows {
		return a.seal()
	}
	if a.acc.rows > 0 && a.gov.OverBudget() {
		a.statMu.Lock()
		a.stats.EarlySeals++
		a.statMu.Unlock()
		return a.seal()
	}
	return nil
}

// sealChecked is seal behind the sticky-failure gate, for explicit
// Checkpoint calls.
func (a *Aggregator) sealChecked() (uint64, error) {
	if err := a.loadErr(); err != nil {
		return a.epoch, err
	}
	if err := a.seal(); err != nil {
		a.fail(err)
		return a.epoch, err
	}
	return a.epoch, nil
}

// seal makes the open accumulator durable: epoch file through the block
// codec, fsync, manifest commit. On any error the orphan epoch file is
// removed and the previous manifest remains the truth.
func (a *Aggregator) seal() error {
	if a.acc.rows == 0 {
		return nil
	}
	seq := a.epoch + 1
	path := filepath.Join(a.dir, epochFileName(seq))
	w, err := external.NewBlockWriter(a.fs, path, "checkpoint", a.plan.Width())
	if err != nil {
		return fmt.Errorf("stream: seal epoch %d: %w", seq, err)
	}
	for i := range a.acc.keys {
		if err := w.AppendState(a.acc.keys[i], a.acc.parts, i); err != nil {
			w.Abort()
			a.fs.Remove(path)
			return fmt.Errorf("stream: seal epoch %d: %w", seq, err)
		}
	}
	if err := w.Finish(!a.opts.NoSync); err != nil {
		w.Abort()
		a.fs.Remove(path)
		return fmt.Errorf("stream: seal epoch %d: %w", seq, err)
	}
	if a.tr != nil {
		a.tr.Emit(trace.KindCheckpointWrite, 0, 0, int64(seq), float64(w.Bytes()))
	}
	m := a.man.clone()
	m.Epochs = append(m.Epochs, epochEntry{
		Seq:     seq,
		Records: uint64(len(a.acc.keys)),
		Bytes:   w.Bytes(),
	})
	m.RowsDurable += uint64(a.acc.rows)
	m.BlocksDurable += uint64(a.pending)
	manBytes, err := a.commitManifest(m)
	if err != nil {
		a.fs.Remove(path) // roll the orphan epoch back ourselves
		return fmt.Errorf("stream: seal epoch %d: %w", seq, err)
	}
	a.man = m
	a.epoch = seq
	a.pending = 0
	if a.tr != nil {
		a.tr.Emit(trace.KindEpochSeal, 0, 0, int64(seq), float64(len(a.acc.keys)))
	}
	a.statMu.Lock()
	a.stats.EpochsSealed++
	a.stats.CheckpointBytes += w.Bytes() + manBytes
	a.prog.Epoch = seq
	a.prog.RowsDurable = m.RowsDurable
	a.prog.BlocksDurable = m.BlocksDurable
	a.prog.RowsBuffered = 0
	a.statMu.Unlock()
	a.releaseAcc()
	return nil
}

// commitManifest writes m to MANIFEST.tmp, fsyncs, atomically renames it
// over MANIFEST and fsyncs the directory — the commit point of the seal.
func (a *Aggregator) commitManifest(m manifest) (int64, error) {
	b := m.encode()
	tmp := filepath.Join(a.dir, manifestName+".tmp")
	f, err := a.fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("create manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		a.fs.Remove(tmp)
		return 0, fmt.Errorf("write manifest: %w", err)
	}
	if !a.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			a.fs.Remove(tmp)
			return 0, fmt.Errorf("sync manifest: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		a.fs.Remove(tmp)
		return 0, fmt.Errorf("close manifest: %w", err)
	}
	if err := a.fs.Rename(tmp, filepath.Join(a.dir, manifestName)); err != nil {
		a.fs.Remove(tmp)
		return 0, fmt.Errorf("commit manifest: %w", err)
	}
	if !a.opts.NoSync {
		if err := a.syncDir(); err != nil {
			return 0, fmt.Errorf("sync checkpoint dir: %w", err)
		}
	}
	if a.tr != nil {
		a.tr.Emit(trace.KindCheckpointWrite, 0, 0, -1, float64(len(b)))
	}
	return int64(len(b)), nil
}

// syncDir fsyncs the checkpoint directory so the manifest rename itself
// is durable.
func (a *Aggregator) syncDir() error {
	d, err := a.fs.Open(a.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// finish seals, marks the manifest finished, and computes the final
// result.
func (a *Aggregator) finish() (*Result, error) {
	if err := a.loadErr(); err != nil {
		return nil, err
	}
	if err := a.seal(); err != nil {
		a.fail(err)
		return nil, err
	}
	res, err := a.snapshot(0)
	if err != nil {
		return nil, err
	}
	m := a.man.clone()
	m.Finished = true
	if _, err := a.commitManifest(m); err != nil {
		return nil, fmt.Errorf("stream: finish: %w", err)
	}
	a.man = m
	return res, nil
}

// snapshot merges the last `window` sealed epochs plus the open
// accumulator through the batch machinery and finalizes per the original
// specs.
func (a *Aggregator) snapshot(window int) (*Result, error) {
	if err := a.loadErr(); err != nil {
		return nil, err
	}
	epochs := a.man.Epochs
	if window > 0 && window < len(epochs) {
		epochs = epochs[len(epochs)-window:]
	}
	width := a.plan.Width()
	total := len(a.acc.keys)
	for _, e := range epochs {
		total += int(e.Records)
	}
	res := &Result{Epochs: len(epochs)}
	a.statMu.Lock()
	a.stats.Snapshots++
	a.statMu.Unlock()
	if total == 0 {
		res.Aggs = make([][]int64, len(a.specs))
		res.AggsFloat = make([][]float64, len(a.specs))
		return res, nil
	}

	// Gather: sealed epoch partials from disk plus the live accumulator.
	// The gather buffer is reserved with the governor for its lifetime.
	gatherBytes := int64(total) * int64(8+8*width)
	a.gov.Reserve(gatherBytes)
	defer a.gov.Release(gatherBytes)
	keys := make([]uint64, 0, total)
	cols := make([][]int64, width)
	for c := range cols {
		cols[c] = make([]int64, 0, total)
	}
	for _, e := range epochs {
		path := filepath.Join(a.dir, epochFileName(e.Seq))
		ekeys, ecols, err := external.ReadBlockFile(a.fs, path, "checkpoint", width)
		if err != nil {
			return nil, fmt.Errorf("%w: epoch %d: %w", ErrCorruptCheckpoint, e.Seq, err)
		}
		if uint64(len(ekeys)) != e.Records {
			return nil, fmt.Errorf("%w: epoch %d holds %d records, manifest says %d",
				ErrCorruptCheckpoint, e.Seq, len(ekeys), e.Records)
		}
		keys = append(keys, ekeys...)
		for c := 0; c < width; c++ {
			for _, v := range ecols[c] {
				cols[c] = append(cols[c], int64(v))
			}
		}
	}
	keys = append(keys, a.acc.keys...)
	for c := 0; c < width; c++ {
		for _, v := range a.acc.parts[c] {
			cols[c] = append(cols[c], int64(v))
		}
	}

	// Merge: the decomposed partials under their super-aggregate kinds,
	// through the in-memory operator — degrading to the external engine
	// when the budget refuses the table.
	mergeSpecs := make([]agg.Spec, width)
	for c := 0; c < width; c++ {
		mergeSpecs[c] = agg.Spec{Kind: a.plan.MergeKind[c], Col: c}
	}
	in := &core.Input{Keys: keys, AggCols: cols, Specs: mergeSpecs}
	ccfg := a.opts.Core
	ccfg.Governor = a.gov
	ccfg.Tracer = a.tr
	merged, err := core.AggregateContext(context.Background(), ccfg, in)
	var mkeys []uint64
	var mparts [][]uint64
	switch {
	case err == nil:
		mkeys = merged.Keys
		mparts = make([][]uint64, width)
		for c := 0; c < width; c++ {
			col := make([]uint64, len(merged.Aggs[c]))
			for i, v := range merged.Aggs[c] {
				col[i] = uint64(v)
			}
			mparts[c] = col
		}
	case errors.Is(err, core.ErrMemoryBudget) || errors.Is(err, memgov.ErrBudget):
		a.statMu.Lock()
		a.stats.SnapshotSpills++
		a.statMu.Unlock()
		ecfg := external.Config{
			Governor: a.gov,
			TempDir:  filepath.Join(a.dir, snapshotTmpDir),
			FS:       a.baseFS,
			Retry:    a.opts.Retry,
			Tracer:   a.tr,
			Core:     a.opts.Core,
		}
		if err := os.MkdirAll(ecfg.TempDir, 0o755); err != nil {
			return nil, fmt.Errorf("stream: snapshot spill dir: %w", err)
		}
		eres, eerr := external.AggregateContext(context.Background(), ecfg, in)
		switch {
		case eerr == nil:
			mkeys = eres.Keys
			mparts = make([][]uint64, width)
			for c := 0; c < width; c++ {
				col := make([]uint64, len(eres.Aggs[c]))
				for i, v := range eres.Aggs[c] {
					col[i] = uint64(v)
				}
				mparts[c] = col
			}
		case errors.Is(eerr, core.ErrMemoryBudget) || errors.Is(eerr, memgov.ErrBudget):
			// The budget is smaller than the operators' own machinery
			// floor. The snapshot must still materialize — its working
			// set is already charged to the ledger by the gather
			// reservation — so fall to the minimal-footprint merge.
			mkeys, mparts = a.mergeByMap(keys, cols)
		default:
			return nil, fmt.Errorf("stream: snapshot merge: %w", eerr)
		}
	default:
		return nil, fmt.Errorf("stream: snapshot merge: %w", err)
	}

	finalize(a.plan, mkeys, mparts, res)
	sortResult(res)
	return res, nil
}

// mergeByMap is the snapshot merge of last resort: one hash map, one
// pass, no operator machinery. It exists so a Snapshot always succeeds
// under budgets too small for the core or external engines — the result
// has to materialize regardless, and this path's footprint is the gather
// reservation the caller already holds.
func (a *Aggregator) mergeByMap(keys []uint64, cols [][]int64) ([]uint64, [][]uint64) {
	width := a.plan.Width()
	idx := make(map[uint64]int, 1024)
	var mk []uint64
	mp := make([][]uint64, width)
	var dst, src [1]uint64
	for r, k := range keys {
		g, ok := idx[k]
		if !ok {
			idx[k] = len(mk)
			mk = append(mk, k)
			for c := 0; c < width; c++ {
				mp[c] = append(mp[c], uint64(cols[c][r]))
			}
			continue
		}
		for c := 0; c < width; c++ {
			dst[0], src[0] = mp[c][g], uint64(cols[c][r])
			a.plan.MergeKind[c].Merge(dst[:], src[:])
			mp[c][g] = dst[0]
		}
	}
	return mk, mp
}

// finalize turns merged decomposed partials into the original specs'
// results: AVG from its (SUM, COUNT) pair — exact in the float column —
// everything else widened in place.
func finalize(p *external.Plan, keys []uint64, parts [][]uint64, res *Result) {
	res.Keys = keys
	res.Hashes = make([]uint64, len(keys))
	for i, k := range keys {
		res.Hashes[i] = hashfn.Murmur2(k)
	}
	res.Aggs = make([][]int64, len(p.Orig))
	res.AggsFloat = make([][]float64, len(p.Orig))
	for si, s := range p.Orig {
		off := p.Off[si]
		col := make([]int64, len(keys))
		fcol := make([]float64, len(keys))
		for g := range keys {
			if s.Kind == agg.Avg {
				sum := int64(parts[off][g])
				cnt := int64(parts[off+1][g])
				if cnt == 0 {
					col[g], fcol[g] = 0, 0
				} else {
					col[g], fcol[g] = sum/cnt, float64(sum)/float64(cnt)
				}
			} else {
				v := int64(parts[off][g])
				col[g], fcol[g] = v, float64(v)
			}
		}
		res.Aggs[si] = col
		res.AggsFloat[si] = fcol
	}
}

// sortResult orders the result by (hash, key): the canonical order that
// makes snapshots bit-identical across arrival orders, epoch splits and
// crash/resume histories.
func sortResult(res *Result) {
	n := len(res.Keys)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		if res.Hashes[i] != res.Hashes[j] {
			return res.Hashes[i] < res.Hashes[j]
		}
		return res.Keys[i] < res.Keys[j]
	})
	keys := make([]uint64, n)
	hashes := make([]uint64, n)
	for i, s := range perm {
		keys[i] = res.Keys[s]
		hashes[i] = res.Hashes[s]
	}
	res.Keys, res.Hashes = keys, hashes
	for c := range res.Aggs {
		col := make([]int64, n)
		for i, s := range perm {
			col[i] = res.Aggs[c][s]
		}
		res.Aggs[c] = col
	}
	for c := range res.AggsFloat {
		col := make([]float64, n)
		for i, s := range perm {
			col[i] = res.AggsFloat[c][s]
		}
		res.AggsFloat[c] = col
	}
}
