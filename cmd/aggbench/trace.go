package main

// -trace-dir support: after a sweep point is measured, the workload runs
// once more with a tracer installed and the retained events land in
// <dir>/<point>.jsonl. Tracing a separate run (instead of the measured
// iterations) keeps the benchmark numbers untouched and the trace files
// one-execution sized.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cacheagg/internal/trace"
)

// traceDir is the -trace-dir destination; empty disables point tracing.
var traceDir string

// tracePoint runs fn once against a fresh recorder and writes the events
// to <traceDir>/<sanitized name>.jsonl. No-op when -trace-dir is unset.
func tracePoint(name string, fn func(rec *trace.Recorder)) {
	if traceDir == "" {
		return
	}
	rec := trace.NewRecorder(1 << 16)
	fn(rec)
	file := strings.NewReplacer("/", "_", "^", "", "=", "-").Replace(name) + ".jsonl"
	path := filepath.Join(traceDir, file)
	if err := writeTraceFile(path, rec); err != nil {
		fmt.Fprintf(os.Stderr, "aggbench: -trace-dir: %v\n", err)
	}
}

func writeTraceFile(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := trace.WriteJSONL(w, rec.Events()); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
