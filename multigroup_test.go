package cacheagg

import (
	"fmt"
	"testing"

	"cacheagg/internal/xrand"
)

func TestAggregateMultiTwoColumns(t *testing.T) {
	// GROUP BY (region, product): 3 regions × 2 products.
	region := []uint64{1, 1, 2, 2, 3, 1, 2}
	product := []uint64{10, 20, 10, 10, 20, 10, 10}
	sales := []int64{5, 7, 3, 2, 9, 1, 4}

	res, err := AggregateMulti(MultiInput{
		GroupBy: [][]uint64{region, product},
		Columns: [][]int64{sales},
		Aggregates: []AggSpec{
			{Func: Count},
			{Func: Sum, Col: 0},
		},
	}, opts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int64{
		"1/10": {2, 6}, "1/20": {1, 7},
		"2/10": {3, 9},
		"3/20": {1, 9},
	}
	if res.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", res.Len(), len(want))
	}
	for i := 0; i < res.Len(); i++ {
		k := fmt.Sprintf("%d/%d", res.GroupCols[0][i], res.GroupCols[1][i])
		w, ok := want[k]
		if !ok {
			t.Fatalf("unexpected group %s", k)
		}
		if res.Aggs[0][i] != w[0] || res.Aggs[1][i] != w[1] {
			t.Fatalf("group %s: got (%d,%d), want %v", k, res.Aggs[0][i], res.Aggs[1][i], w)
		}
	}
}

func TestAggregateMultiLarge(t *testing.T) {
	// Random two-column keys; compare against a map reference.
	const n = 50000
	rng := xrand.NewXoshiro256(1)
	a := make([]uint64, n)
	b := make([]uint64, n)
	v := make([]int64, n)
	ref := map[[2]uint64]int64{}
	for i := 0; i < n; i++ {
		a[i] = rng.Next() % 50
		b[i] = rng.Next() % 40
		v[i] = int64(rng.Next() % 100)
		ref[[2]uint64{a[i], b[i]}] += v[i]
	}
	res, err := AggregateMulti(MultiInput{
		GroupBy:    [][]uint64{a, b},
		Columns:    [][]int64{v},
		Aggregates: []AggSpec{{Func: Sum, Col: 0}},
	}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(ref) {
		t.Fatalf("groups = %d, want %d", res.Len(), len(ref))
	}
	for i := 0; i < res.Len(); i++ {
		k := [2]uint64{res.GroupCols[0][i], res.GroupCols[1][i]}
		if res.Aggs[0][i] != ref[k] {
			t.Fatalf("group %v: %d != %d", k, res.Aggs[0][i], ref[k])
		}
	}
}

func TestAggregateMultiNoKeyColumns(t *testing.T) {
	if _, err := AggregateMulti(MultiInput{}, Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestAggregateMultiFloat(t *testing.T) {
	res, err := AggregateMulti(MultiInput{
		GroupBy:    [][]uint64{{1, 1}},
		Columns:    [][]int64{{1, 2}},
		Aggregates: []AggSpec{{Func: Avg, Col: 0}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Float(0, 0) != 1.5 {
		t.Fatalf("avg = %v", res.Float(0, 0))
	}
}

func TestAggregateStrings(t *testing.T) {
	cities := []string{"berlin", "paris", "berlin", "rome", "paris", "berlin"}
	pop := []int64{10, 20, 30, 40, 50, 60}
	res, err := AggregateStrings(StringInput{
		GroupBy:    cities,
		Columns:    [][]int64{pop},
		Aggregates: []AggSpec{{Func: Count}, {Func: Sum, Col: 0}},
	}, opts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int64{
		"berlin": {3, 100}, "paris": {2, 70}, "rome": {1, 40},
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d", res.Len())
	}
	for i, city := range res.Groups {
		w := want[city]
		if res.Aggs[0][i] != w[0] || res.Aggs[1][i] != w[1] {
			t.Fatalf("%s: got (%d,%d), want %v", city, res.Aggs[0][i], res.Aggs[1][i], w)
		}
	}
}

func TestAggregateStringsEmpty(t *testing.T) {
	res, err := AggregateStrings(StringInput{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatal("empty input should yield no groups")
	}
}

func TestMultiResultLenEmpty(t *testing.T) {
	r := &MultiResult{}
	if r.Len() != 0 {
		t.Fatal("empty MultiResult should have length 0")
	}
}
