package cacheagg

// Out-of-core aggregation: the disk level of the external memory model.
// See internal/external for the algorithm (chunked in-memory
// pre-aggregation → hash-partitioned spill files → recursive merge).

import (
	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/external"
)

// ExternalOptions tunes an out-of-core aggregation.
type ExternalOptions struct {
	// MemoryBudgetRows caps the rows held in memory at a time; inputs
	// larger than this are processed in chunks with spilling. 0 selects
	// 1Mi rows.
	MemoryBudgetRows int
	// TempDir hosts the spill files ("" = system temp directory). Files
	// are removed when the call returns.
	TempDir string
}

// ExternalStats describes the spill behaviour of an out-of-core run.
type ExternalStats struct {
	// Chunks is the number of input chunks pre-aggregated in memory.
	Chunks int
	// SpilledRows and SpilledBytes count the partial-group records that
	// went through disk.
	SpilledRows  int64
	SpilledBytes int64
	// MergeLevels is the deepest disk-level partitioning recursion.
	MergeLevels int
}

// ExternalResult is the result of AggregateExternal.
type ExternalResult struct {
	// Groups holds the distinct grouping keys.
	Groups []uint64
	// Aggs holds one output column per requested aggregate (AVG rows are
	// truncated integer quotients).
	Aggs [][]int64
	// Stats describes the spill behaviour.
	Stats ExternalStats
}

// Len returns the number of groups.
func (r *ExternalResult) Len() int { return len(r.Groups) }

// AggregateExternal executes the GROUP BY with bounded memory, spilling
// partial aggregates to disk when the input exceeds the budget. The
// in-memory operator (configured by opt) serves as the in-RAM leaf, so all
// of its adaptivity applies within each chunk.
func AggregateExternal(in Input, opt Options, ext ExternalOptions) (*ExternalResult, error) {
	specs := make([]agg.Spec, len(in.Aggregates))
	for i, a := range in.Aggregates {
		if a.Func < Count || a.Func > Avg {
			return nil, errInvalidFunc(int(a.Func))
		}
		specs[i] = agg.Spec{Kind: a.Func.kind(), Col: a.Col}
	}
	res, err := external.Aggregate(external.Config{
		MemoryBudgetRows: ext.MemoryBudgetRows,
		TempDir:          ext.TempDir,
		Core: core.Config{
			Strategy:   opt.Strategy.inner,
			Workers:    opt.Workers,
			CacheBytes: opt.CacheBytes,
		},
	}, &core.Input{
		Keys:    in.GroupBy,
		AggCols: in.Columns,
		Specs:   specs,
	})
	if err != nil {
		return nil, err
	}
	return &ExternalResult{
		Groups: res.Keys,
		Aggs:   res.Aggs,
		Stats: ExternalStats{
			Chunks:       res.Stats.Chunks,
			SpilledRows:  res.Stats.SpilledRows,
			SpilledBytes: res.Stats.SpilledBytes,
			MergeLevels:  res.Stats.MergeLevels,
		},
	}, nil
}
