// Package external implements out-of-core (spilling) aggregation on top of
// the in-memory operator — the disk level of the external memory model.
//
// The paper's Section 2 analysis is deliberately general: "this model holds
// in the cache setting as well as in the disk-based setting". This package
// is the disk instantiation of HASHAGGREGATION-OPTIMIZED, with the paper's
// in-memory operator as its in-"cache" (= in-RAM) leaf:
//
//  1. The input is consumed in chunks sized to the memory budget. Each
//     chunk is aggregated in memory by the core operator — early
//     aggregation at the RAM level, exactly like the HASHING routine's
//     role at the cache level.
//  2. Each chunk's partial groups are appended to one of 256 spill
//     partitions chosen by the first digit of the group's hash. Partition
//     files hold (key, partial...) records — "runs" on disk, in the
//     original sense of the word.
//  3. Every partition is merged with the super-aggregate functions (COUNT
//     partials merge by SUM, and AVG is decomposed into SUM and COUNT up
//     front). Partitions still exceeding the budget recurse on the next
//     hash digit — Algorithm 2, one storage level up.
//
// Like the in-memory operator, the algorithm needs no estimate of the
// output cardinality, degrades gracefully with K, and benefits from input
// locality through the chunk-level early aggregation of step 1.
//
// Unlike the in-memory operator, this level cannot trust its storage.
// Spill files therefore carry a versioned header and a CRC32 footer
// (see docs/ROBUSTNESS.md for the format) verified on read, total spill
// volume can be capped with Config.MaxSpillBytes, every writer is closed
// and removed on every error path, and all file I/O goes through the
// faultfs.FS interface so tests can deterministically inject faults at
// each I/O site.
package external

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/partition"
)

// Config configures an external aggregation.
type Config struct {
	// MemoryBudgetRows caps the rows aggregated in memory at a time
	// (chunk size and partition-merge threshold). 0 selects 1<<20, or a
	// value derived from MemoryBudgetBytes when that is set.
	MemoryBudgetRows int
	// MemoryBudgetBytes is the byte-accurate memory budget of the whole
	// execution, enforced through a memgov.Governor: chunk size, worker
	// count and cache size of the in-memory leaves are derived from it,
	// and partial groups stay RESIDENT in memory instead of spilling
	// until the budget forces the largest partitions to disk (the
	// dynamic-hybrid degradation). 0 disables byte governance and keeps
	// the pure row-budget behavior.
	MemoryBudgetBytes int64
	// Governor, when non-nil, is used instead of a fresh governor built
	// from MemoryBudgetBytes — callers that degrade from the in-memory
	// path pass theirs so the high-water mark spans the whole query.
	Governor *memgov.Governor
	// TempDir hosts the spill files; "" selects the system default.
	TempDir string
	// MaxSpillBytes caps the total bytes written to spill files over the
	// whole execution, including re-partitioning passes. When the cap
	// would be exceeded the aggregation fails fast with ErrSpillBudget
	// instead of filling the disk. 0 means no cap.
	MaxSpillBytes int64
	// Retry configures transient-fault retries of spill I/O; zero fields
	// select faultfs.DefaultRetryPolicy.
	Retry faultfs.RetryPolicy
	// FS is the spill-file backend; nil selects the real filesystem.
	// Tests substitute a faultfs.Injector to exercise I/O error paths.
	// The backend is wrapped in a faultfs.Retry, so transient faults
	// (EINTR/EAGAIN-class) are absorbed with capped exponential backoff.
	FS faultfs.FS
	// Core configures the in-memory operator used for the leaves.
	Core core.Config
}

// Validate rejects configurations that are structurally wrong rather than
// merely defaulted: negative budgets and caps. Zero values always mean
// "pick the default" and are accepted.
func (c Config) Validate() error {
	if c.MemoryBudgetRows < 0 {
		return fmt.Errorf("external: MemoryBudgetRows is negative (%d); use 0 for the default", c.MemoryBudgetRows)
	}
	if c.MemoryBudgetBytes < 0 {
		return fmt.Errorf("external: MemoryBudgetBytes is negative (%d); use 0 for unlimited", c.MemoryBudgetBytes)
	}
	if c.MaxSpillBytes < 0 {
		return fmt.Errorf("external: MaxSpillBytes is negative (%d); use 0 for no cap", c.MaxSpillBytes)
	}
	if c.Retry.MaxAttempts < 0 {
		return fmt.Errorf("external: Retry.MaxAttempts is negative (%d)", c.Retry.MaxAttempts)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MemoryBudgetRows <= 0 {
		c.MemoryBudgetRows = 1 << 20
	}
	if c.FS == nil {
		c.FS = faultfs.OS()
	}
	return c
}

// sizeFromBudget derives the in-memory leaf sizing from MemoryBudgetBytes
// for a plan of the given decomposed width: few enough workers that their
// fixed machinery (cache-sized table, SWC buffers, scratch) fits the
// budget with room left for intermediates and resident partitions, and a
// cache budget proportional to the remainder. No-op without a byte budget;
// explicit user sizing is only ever shrunk, never grown.
func (c *Config) sizeFromBudget(width int) {
	if c.MemoryBudgetBytes <= 0 {
		return
	}
	// Rough fixed bytes of one worker: SWC scatter buffers dominate, plus
	// the minimum table and the intake scratch blocks.
	perWorker := int64(hashfn.Fanout*partition.DefaultBufRows*8*(2+width)) +
		int64(2048*(28+8*width)) + 96<<10
	w := c.Core.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if maxW := int(c.MemoryBudgetBytes / (3 * perWorker)); w > maxW {
		w = max(maxW, 1)
	}
	c.Core.Workers = w
	target := int(c.MemoryBudgetBytes / int64(8*w))
	if c.Core.CacheBytes <= 0 || c.Core.CacheBytes > target {
		c.Core.CacheBytes = max(target, 32<<10)
	}
}

// Sentinel errors of the spill path, matched with errors.Is.
var (
	// ErrCorruptSpill marks a spill file that failed structural or
	// checksum validation (truncation, bit rot, format mismatch).
	ErrCorruptSpill = errors.New("corrupt spill file")
	// ErrSpillBudget marks an execution stopped by Config.MaxSpillBytes.
	ErrSpillBudget = errors.New("spill budget exceeded")
)

// Spill file format (little-endian):
//
//	header  16 B   magic "CAGS" | version u16 | record bytes u16 | reserved u64
//	records n×recSize   key u64, then one u64 partial per decomposed column
//	footer  16 B   record count u64 | CRC32-IEEE(header+records) u32 | "SPND"
//
// The record width in the header lets a reader reject files written with a
// different aggregate plan; the footer CRC catches truncation and bit rot.
const (
	spillMagic      = 0x43414753 // "CAGS"
	spillEndMagic   = 0x53504e44 // "SPND"
	spillVersion    = 1
	spillHeaderSize = 16
	spillFooterSize = 16
)

// Stats reports what the external pass did.
type Stats struct {
	// Chunks is the number of input chunks pre-aggregated in memory.
	Chunks int
	// SpilledRows / SpilledBytes count partial-group records written.
	SpilledRows  int64
	SpilledBytes int64
	// MergeLevels is the deepest disk-level recursion reached.
	MergeLevels int
	// CleanupFailures counts spill files whose removal failed (the
	// aggregation itself is unaffected; the temp directory is still
	// deleted recursively at the end).
	CleanupFailures int
	// SpillRetries counts transient spill-I/O faults that were absorbed
	// by the retry layer (each is one extra attempt that succeeded or
	// eventually gave up).
	SpillRetries int64
	// PeakReservedBytes is the governor's high-water mark: the largest
	// in-memory footprint the execution registered at any point.
	PeakReservedBytes int64
	// ResidentPartitions counts level-0 partitions that were merged
	// straight from memory without ever touching disk (hybrid mode).
	ResidentPartitions int
	// EvictedPartitions counts resident partitions pushed to disk because
	// the byte budget demanded it (largest first).
	EvictedPartitions int
	// ChunkRetries counts input ranges re-aggregated with a smaller chunk
	// size after the in-memory leaf ran over the byte budget.
	ChunkRetries int
}

// Result is the aggregation output plus spill statistics. Group order is
// hash order (by construction of the partition recursion).
type Result struct {
	Keys []uint64
	Aggs [][]int64
	// AggsFloat mirrors Aggs finalized as float64 — exact for AVG, the
	// widened integer otherwise.
	AggsFloat [][]float64
	Stats     Stats
}

// Groups returns the number of groups.
func (r *Result) Groups() int { return len(r.Keys) }

// plan decomposes the original specs into width-1 partials that can be
// finalized, spilled and merged independently: AVG becomes (SUM, COUNT),
// everything else is itself. mergeKind holds the super-aggregate of each
// decomposed column.
type plan struct {
	orig      []agg.Spec
	dec       []agg.Spec
	mergeKind []agg.Kind
	off       []int // first decomposed column of each original spec
}

func buildPlan(specs []agg.Spec) *plan {
	p := &plan{orig: specs}
	for _, s := range specs {
		p.off = append(p.off, len(p.dec))
		switch s.Kind {
		case agg.Count:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Count})
			p.mergeKind = append(p.mergeKind, agg.Sum)
		case agg.Sum:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Sum, Col: s.Col})
			p.mergeKind = append(p.mergeKind, agg.Sum)
		case agg.Min:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Min, Col: s.Col})
			p.mergeKind = append(p.mergeKind, agg.Min)
		case agg.Max:
			p.dec = append(p.dec, agg.Spec{Kind: agg.Max, Col: s.Col})
			p.mergeKind = append(p.mergeKind, agg.Max)
		case agg.Avg:
			p.dec = append(p.dec,
				agg.Spec{Kind: agg.Sum, Col: s.Col},
				agg.Spec{Kind: agg.Count})
			p.mergeKind = append(p.mergeKind, agg.Sum, agg.Sum)
		default:
			panic("external: invalid aggregate kind")
		}
	}
	return p
}

// width returns the number of decomposed partial columns.
func (p *plan) width() int { return len(p.dec) }

// Aggregate executes the out-of-core GROUP BY.
func Aggregate(cfg Config, in *core.Input) (*Result, error) {
	return AggregateContext(context.Background(), cfg, in)
}

// AggregateContext is Aggregate with cancellation: the context is observed
// between chunks, inside each chunk's in-memory aggregation (at morsel and
// task boundaries), and at every step of the merge recursion. On any error
// — cancellation, I/O fault, budget, corruption — all spill writers are
// closed and their files removed before the call returns.
func AggregateContext(ctx context.Context, cfg Config, in *core.Input) (res *Result, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	userRows := cfg.MemoryBudgetRows
	cfg = cfg.withDefaults()
	p := buildPlan(in.Specs)
	cfg.sizeFromBudget(p.width())
	if userRows <= 0 && cfg.MemoryBudgetBytes > 0 {
		// Derive the row budget from the byte budget: a merged row costs
		// its record (read buffer) plus map entry and output copies —
		// roughly 4× the record size covers all of them.
		rows := cfg.MemoryBudgetBytes / int64(4*(8+8*p.width()))
		cfg.MemoryBudgetRows = int(min(max(rows, 1024), 1<<20))
	}

	gov := cfg.Governor
	if gov == nil {
		gov = memgov.New(cfg.MemoryBudgetBytes)
	}
	if cfg.Core.Governor == nil {
		cfg.Core.Governor = gov
	}
	// All spill I/O goes through the transient-fault retry layer.
	retry := faultfs.NewRetry(cfg.FS, cfg.Retry)
	cfg.FS = retry

	dir, err := os.MkdirTemp(cfg.TempDir, "cacheagg-spill-*")
	if err != nil {
		return nil, fmt.Errorf("external: %w", err)
	}
	e := &extExec{cfg: cfg, plan: p, dir: dir, gov: gov}
	defer func() {
		if err != nil {
			e.cleanupAll()
		}
		os.RemoveAll(dir)
	}()

	parts, err := e.spillInput(ctx, in)
	if err != nil {
		return nil, err
	}
	res = &Result{
		Aggs:      make([][]int64, len(in.Specs)),
		AggsFloat: make([][]float64, len(in.Specs)),
	}
	for d := 0; d < hashfn.Fanout; d++ {
		if e.resident[d].n() > 0 {
			if parts[d] != nil {
				// Hybrid partition: push the resident remainder to the
				// file so the merge sees every partial row.
				if err := e.evict(d, parts); err != nil {
					return nil, err
				}
			} else {
				// Fully resident partition: merge straight from memory.
				e.stats.ResidentPartitions++
				r := &e.resident[d]
				e.mergeInMemory(r.keys, r.partials, res)
				e.releaseResident(d)
				continue
			}
		}
		if parts[d] == nil {
			continue
		}
		if err := parts[d].finish(); err != nil {
			return nil, err
		}
		if err := e.mergePartition(ctx, parts[d], 1, res); err != nil {
			return nil, err
		}
	}
	e.stats.SpillRetries = retry.Retries()
	e.stats.PeakReservedBytes = gov.HighWater()
	res.Stats = e.stats
	return res, nil
}

type extExec struct {
	cfg       Config
	plan      *plan
	dir       string
	gov       *memgov.Governor
	stats     Stats
	nextID    int
	diskBytes int64 // total file bytes written, incl. headers and footers

	// resident holds the level-0 partitions kept in memory in hybrid mode
	// (governor with a byte budget): partials accumulate here and only hit
	// disk when the budget forces the largest partition out.
	resident [hashfn.Fanout]resident

	// track lists every spill writer ever created, so one cleanup pass on
	// the error path can close and remove whatever is still live — no
	// file handle or temp file survives a failed aggregation.
	track []*spillWriter
}

// resident is one level-0 partition's in-memory partial rows.
type resident struct {
	keys     []uint64
	partials [][]uint64
	bytes    int64 // reserved with the governor
}

func (r *resident) n() int { return len(r.keys) }

// recSize is the byte size of one spilled record: key + decomposed partials.
func (e *extExec) recSize() int { return 8 + 8*e.plan.width() }

// charge reserves n bytes of spill budget, failing fast before the write
// that would exceed Config.MaxSpillBytes.
func (e *extExec) charge(n int) error {
	if e.cfg.MaxSpillBytes > 0 && e.diskBytes+int64(n) > e.cfg.MaxSpillBytes {
		return fmt.Errorf("external: %w: %d bytes spilled, next write of %d bytes exceeds MaxSpillBytes=%d",
			ErrSpillBudget, e.diskBytes, n, e.cfg.MaxSpillBytes)
	}
	e.diskBytes += int64(n)
	return nil
}

// cleanupAll closes and removes every spill file still present. Remove
// failures are counted in Stats (the deferred RemoveAll sweeps the
// directory regardless); close errors on the error path are irrelevant.
func (e *extExec) cleanupAll() {
	for _, w := range e.track {
		w.discard(e)
	}
}

// removeSpill deletes a consumed spill file, recording (not ignoring) a
// failed removal.
func (e *extExec) removeSpill(w *spillWriter) {
	if w.removed {
		return
	}
	w.removed = true
	if err := e.cfg.FS.Remove(w.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		e.stats.CleanupFailures++
	}
}

// minChunkRows is the floor of the chunk-halving degradation: below this
// the per-chunk fixed costs dominate and shrinking further cannot help.
const minChunkRows = 1024

// spillInput runs phase 1 and returns one open spill writer per non-empty
// level-0 partition (resident partitions may have no writer).
//
// When a chunk's in-memory aggregation runs over the byte budget, the
// input range is retried with half the chunk size after evicting every
// resident partition — the next rung of the degradation ladder. Only when
// even minChunkRows-sized chunks cannot fit does the error propagate.
func (e *extExec) spillInput(ctx context.Context, in *core.Input) ([]*spillWriter, error) {
	writers := make([]*spillWriter, hashfn.Fanout)
	budget := e.cfg.MemoryBudgetRows
	n := len(in.Keys)
	lo := 0
	for lo < n {
		hi := min(lo+budget, n)
		chunk := &core.Input{Keys: in.Keys[lo:hi], Specs: e.plan.dec}
		chunk.AggCols = make([][]int64, len(in.AggCols))
		for c := range in.AggCols {
			chunk.AggCols[c] = in.AggCols[c][lo:hi]
		}
		part, err := core.AggregateContext(ctx, e.cfg.Core, chunk)
		if err != nil {
			if errors.Is(err, core.ErrMemoryBudget) && budget > minChunkRows {
				if err := e.evictAll(writers); err != nil {
					return nil, err
				}
				budget = max(budget/2, minChunkRows)
				e.stats.ChunkRetries++
				continue // same range, smaller chunks
			}
			return nil, err
		}
		e.stats.Chunks++
		if err := e.spillPartial(part, writers); err != nil {
			return nil, err
		}
		lo = hi
	}
	return writers, nil
}

// spillPartial routes each group of an in-memory partial result to the
// level-0 partition of its hash digit: resident in memory while the byte
// budget allows (hybrid mode), spilled to disk otherwise. Because every
// decomposed partial is width-1 and distributive, the finalized columns of
// the core result ARE the partial states.
func (e *extExec) spillPartial(part *core.Result, writers []*spillWriter) error {
	rec := make([]byte, e.recSize())
	hybrid := e.gov != nil && e.gov.Budget() > 0
	for r := 0; r < part.Groups(); r++ {
		d := hashfn.Digit(part.Hashes[r], 0)
		if hybrid {
			kept, err := e.keepResident(d, part, r, writers)
			if err != nil {
				return err
			}
			if kept {
				continue
			}
		}
		w := writers[d]
		if w == nil {
			var err error
			w, err = e.newWriter()
			if err != nil {
				return err
			}
			writers[d] = w
		}
		binary.LittleEndian.PutUint64(rec, part.Keys[r])
		for c := 0; c < e.plan.width(); c++ {
			binary.LittleEndian.PutUint64(rec[8+8*c:], uint64(part.Aggs[c][r]))
		}
		if err := e.writeRecord(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// keepResident tries to append row r of the partial result to partition
// d's resident buffer, evicting the LARGEST resident partitions to disk
// until the reservation fits — Jahangiri et al.'s dynamic hybrid: the
// partitions most likely to keep growing go out, the small ones stay and
// never pay disk I/O. Returns kept=false when nothing is left to evict and
// the row must spill directly.
func (e *extExec) keepResident(d int, part *core.Result, r int, writers []*spillWriter) (kept bool, err error) {
	rowBytes := int64(e.recSize())
	for !e.gov.TryReserve(rowBytes) {
		big := -1
		for i := range e.resident {
			if e.resident[i].n() > 0 && (big < 0 || e.resident[i].bytes > e.resident[big].bytes) {
				big = i
			}
		}
		if big < 0 {
			return false, nil
		}
		e.stats.EvictedPartitions++
		if err := e.evict(big, writers); err != nil {
			return false, err
		}
	}
	res := &e.resident[d]
	if res.partials == nil {
		res.partials = make([][]uint64, e.plan.width())
	}
	res.keys = append(res.keys, part.Keys[r])
	for c := 0; c < e.plan.width(); c++ {
		res.partials[c] = append(res.partials[c], uint64(part.Aggs[c][r]))
	}
	res.bytes += rowBytes
	return true, nil
}

// evict writes partition d's resident rows to its spill file (creating it
// if needed) and releases their reservation.
func (e *extExec) evict(d int, writers []*spillWriter) error {
	res := &e.resident[d]
	if res.n() == 0 {
		return nil
	}
	w := writers[d]
	if w == nil {
		var err error
		w, err = e.newWriter()
		if err != nil {
			return err
		}
		writers[d] = w
	}
	rec := make([]byte, e.recSize())
	for i := range res.keys {
		binary.LittleEndian.PutUint64(rec, res.keys[i])
		for c := 0; c < e.plan.width(); c++ {
			binary.LittleEndian.PutUint64(rec[8+8*c:], res.partials[c][i])
		}
		if err := e.writeRecord(w, rec); err != nil {
			return err
		}
	}
	e.releaseResident(d)
	return nil
}

// evictAll pushes every resident partition to disk (used to free the whole
// budget before retrying an over-budget chunk).
func (e *extExec) evictAll(writers []*spillWriter) error {
	for d := range e.resident {
		if e.resident[d].n() == 0 {
			continue
		}
		e.stats.EvictedPartitions++
		if err := e.evict(d, writers); err != nil {
			return err
		}
	}
	return nil
}

// releaseResident returns partition d's reservation and drops its rows.
func (e *extExec) releaseResident(d int) {
	res := &e.resident[d]
	if e.gov != nil {
		e.gov.Release(res.bytes)
	}
	*res = resident{}
}

// writeRecord appends one record to a spill partition, charging the spill
// budget and the statistics.
func (e *extExec) writeRecord(w *spillWriter, rec []byte) error {
	if err := e.charge(len(rec)); err != nil {
		return err
	}
	if err := w.write(rec); err != nil {
		return fmt.Errorf("external: write spill %s: %w", filepath.Base(w.path), err)
	}
	w.records++
	e.stats.SpilledRows++
	e.stats.SpilledBytes += int64(len(rec))
	return nil
}

// spillWriter writes one partition file in the checksummed spill format.
type spillWriter struct {
	path    string
	f       faultfs.File
	buf     *bufio.Writer
	crc     hash.Hash32
	records uint64
	closed  bool
	removed bool
}

func (e *extExec) newWriter() (*spillWriter, error) {
	if err := e.charge(spillHeaderSize + spillFooterSize); err != nil {
		return nil, err
	}
	e.nextID++
	path := filepath.Join(e.dir, fmt.Sprintf("part-%06d.spill", e.nextID))
	f, err := e.cfg.FS.Create(path)
	if err != nil {
		return nil, fmt.Errorf("external: create spill %s: %w", filepath.Base(path), err)
	}
	w := &spillWriter{path: path, f: f, buf: bufio.NewWriterSize(f, 1<<16), crc: crc32.NewIEEE()}
	e.track = append(e.track, w)
	var hdr [spillHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint16(hdr[4:], spillVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(e.recSize()))
	if err := w.write(hdr[:]); err != nil {
		return nil, fmt.Errorf("external: write spill %s: %w", filepath.Base(path), err)
	}
	return w, nil
}

// write appends bytes to the file through the buffer and the running CRC.
// Record counting is the caller's business (the header is not a record).
func (w *spillWriter) write(p []byte) error {
	if _, err := w.buf.Write(p); err != nil {
		return err
	}
	w.crc.Write(p)
	return nil
}

// finish seals the file: footer, flush, sync, close. After finish the file
// is a self-validating unit on disk.
func (w *spillWriter) finish() error {
	var ftr [spillFooterSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], w.records)
	binary.LittleEndian.PutUint32(ftr[8:], w.crc.Sum32())
	binary.LittleEndian.PutUint32(ftr[12:], spillEndMagic)
	if _, err := w.buf.Write(ftr[:]); err != nil {
		return fmt.Errorf("external: write spill %s: %w", filepath.Base(w.path), err)
	}
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("external: flush spill %s: %w", filepath.Base(w.path), err)
	}
	w.closed = true
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("external: close spill %s: %w", filepath.Base(w.path), err)
	}
	return nil
}

// discard is the error-path cleanup: close the handle if still open and
// remove the file. Safe to call in any state and more than once.
func (w *spillWriter) discard(e *extExec) {
	if !w.closed {
		w.closed = true
		w.f.Close() // error irrelevant: the file is removed next
	}
	e.removeSpill(w)
}

// mergePartition aggregates all partial records of one partition file,
// recursing on the next hash digit when the partition exceeds the memory
// budget. The file is deleted after reading.
func (e *extExec) mergePartition(ctx context.Context, part *spillWriter, level int, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if level > e.stats.MergeLevels {
		e.stats.MergeLevels = level
	}
	keys, partials, err := e.readSpill(part.path)
	if err != nil {
		return err
	}
	e.removeSpill(part)

	// Register the merge buffers with the governor. Released before the
	// recursion in the re-partition branch (the buffers are dead by then),
	// via defer on the in-memory merge branch.
	loaded := int64(len(keys)) * int64(e.recSize())
	if e.gov != nil {
		e.gov.Reserve(loaded)
	}
	released := false
	release := func() {
		if !released && e.gov != nil {
			released = true
			e.gov.Release(loaded)
		}
	}
	defer release()

	if len(keys) > e.cfg.MemoryBudgetRows && level < hashfn.MaxLevels {
		// Too big for an in-memory merge: re-partition by the next digit.
		writers := make([]*spillWriter, hashfn.Fanout)
		rec := make([]byte, e.recSize())
		for i := range keys {
			d := hashfn.Digit(hashfn.Murmur2(keys[i]), level)
			w := writers[d]
			if w == nil {
				w, err = e.newWriter()
				if err != nil {
					return err
				}
				writers[d] = w
			}
			binary.LittleEndian.PutUint64(rec, keys[i])
			for c := 0; c < e.plan.width(); c++ {
				binary.LittleEndian.PutUint64(rec[8+8*c:], partials[c][i])
			}
			if err := e.writeRecord(w, rec); err != nil {
				return err
			}
		}
		keys, partials = nil, nil
		release()
		for _, w := range writers {
			if w == nil {
				continue
			}
			if err := w.finish(); err != nil {
				return err
			}
			if err := e.mergePartition(ctx, w, level+1, res); err != nil {
				return err
			}
		}
		return nil
	}

	e.mergeInMemory(keys, partials, res)
	return nil
}

// mergeInMemory merges partial rows by key with the per-column
// super-aggregates and appends finalized groups to res.
func (e *extExec) mergeInMemory(keys []uint64, partials [][]uint64, res *Result) {
	index := make(map[uint64]int, 1024)
	var outKeys []uint64
	width := e.plan.width()
	out := make([][]uint64, width)
	for i := range keys {
		k := keys[i]
		s, ok := index[k]
		if !ok {
			s = len(outKeys)
			index[k] = s
			outKeys = append(outKeys, k)
			for c := 0; c < width; c++ {
				out[c] = append(out[c], partials[c][i])
			}
			continue
		}
		for c := 0; c < width; c++ {
			st := [1]uint64{out[c][s]}
			src := [1]uint64{partials[c][i]}
			e.plan.mergeKind[c].Merge(st[:], src[:])
			out[c][s] = st[0]
		}
	}
	res.Keys = append(res.Keys, outKeys...)
	for si, s := range e.plan.orig {
		off := e.plan.off[si]
		col := res.Aggs[si]
		fcol := res.AggsFloat[si]
		for g := range outKeys {
			if s.Kind == agg.Avg {
				sum := int64(out[off][g])
				cnt := int64(out[off+1][g])
				if cnt == 0 {
					col = append(col, 0)
					fcol = append(fcol, 0)
				} else {
					col = append(col, sum/cnt)
					fcol = append(fcol, float64(sum)/float64(cnt))
				}
			} else {
				v := int64(out[off][g])
				col = append(col, v)
				fcol = append(fcol, float64(v))
			}
		}
		res.Aggs[si] = col
		res.AggsFloat[si] = fcol
	}
}

func corrupt(path, detail string) error {
	return fmt.Errorf("external: %w %s: %s", ErrCorruptSpill, filepath.Base(path), detail)
}

// readSpill loads a partition file into columnar form, validating the
// header and verifying the CRC32 footer before trusting a single record.
func (e *extExec) readSpill(path string) (_ []uint64, _ [][]uint64, err error) {
	f, err := e.cfg.FS.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("external: open spill %s: %w", filepath.Base(path), err)
	}
	defer func() {
		// A failing close on the read side is still a failing I/O call on
		// a file we depend on; don't swallow it behind a good result.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("external: close spill %s: %w", filepath.Base(path), cerr)
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("external: stat spill %s: %w", filepath.Base(path), err)
	}
	recSize := e.recSize()
	size := st.Size()
	if size < spillHeaderSize+spillFooterSize {
		return nil, nil, corrupt(path, fmt.Sprintf("%d bytes, smaller than header+footer", size))
	}
	payload := size - spillHeaderSize - spillFooterSize
	if payload%int64(recSize) != 0 {
		return nil, nil, corrupt(path, fmt.Sprintf("truncated: %d payload bytes not a multiple of the %d-byte record", payload, recSize))
	}
	nrec := payload / int64(recSize)

	r := bufio.NewReaderSize(f, 1<<16)
	crc := crc32.NewIEEE()

	var hdr [spillHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("external: read spill %s: %w", filepath.Base(path), err)
	}
	crc.Write(hdr[:])
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != spillMagic {
		return nil, nil, corrupt(path, fmt.Sprintf("bad magic %#08x", m))
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != spillVersion {
		return nil, nil, corrupt(path, fmt.Sprintf("unsupported version %d", v))
	}
	if rb := binary.LittleEndian.Uint16(hdr[6:]); int(rb) != recSize {
		return nil, nil, corrupt(path, fmt.Sprintf("record width %d, plan needs %d", rb, recSize))
	}

	rec := make([]byte, recSize)
	keys := make([]uint64, 0, nrec)
	partials := make([][]uint64, e.plan.width())
	for c := range partials {
		partials[c] = make([]uint64, 0, nrec)
	}
	for i := int64(0); i < nrec; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, nil, fmt.Errorf("external: read spill %s: %w", filepath.Base(path), err)
		}
		crc.Write(rec)
		keys = append(keys, binary.LittleEndian.Uint64(rec))
		for c := range partials {
			partials[c] = append(partials[c], binary.LittleEndian.Uint64(rec[8+8*c:]))
		}
	}

	var ftr [spillFooterSize]byte
	if _, err := io.ReadFull(r, ftr[:]); err != nil {
		return nil, nil, fmt.Errorf("external: read spill %s: %w", filepath.Base(path), err)
	}
	if m := binary.LittleEndian.Uint32(ftr[12:]); m != spillEndMagic {
		return nil, nil, corrupt(path, fmt.Sprintf("bad end marker %#08x", m))
	}
	if cnt := binary.LittleEndian.Uint64(ftr[0:]); cnt != uint64(nrec) {
		return nil, nil, corrupt(path, fmt.Sprintf("footer records %d, file holds %d", cnt, nrec))
	}
	if want, got := binary.LittleEndian.Uint32(ftr[8:]), crc.Sum32(); want != got {
		return nil, nil, corrupt(path, fmt.Sprintf("checksum mismatch: footer %#08x, computed %#08x", want, got))
	}
	return keys, partials, nil
}
