package sketch

import (
	"math"
	"testing"

	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
)

func hashAll(keys []uint64) []uint64 {
	out := make([]uint64, len(keys))
	hashfn.HashBatch(keys, out)
	return out
}

// TestHLLAccuracy pins the estimator within a few standard errors of the
// true cardinality across magnitudes and across the generator distributions
// (the hash randomizes the input, so only the distinct-set size matters —
// but the distributions vary that size in realistic ways).
func TestHLLAccuracy(t *testing.T) {
	for _, k := range []int{1, 10, 100, 1000, 10_000, 100_000, 1_000_000} {
		h := NewHLL(12)
		keys := make([]uint64, k)
		for i := range keys {
			keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 12345
		}
		h.AddHashes(hashAll(keys))
		est := h.Estimate()
		err := math.Abs(est-float64(k)) / float64(k)
		// p=12 has ~1.6% standard error; allow 4 sigma plus integer slack
		// for tiny k.
		if err > 0.07 && math.Abs(est-float64(k)) > 2 {
			t.Errorf("K=%d: estimate %.1f off by %.1f%%", k, est, 100*err)
		}
	}

	for _, sp := range datagen.Dists() {
		spec := datagen.Spec{Dist: sp, N: 1 << 16, K: 1 << 12, Seed: 7}
		keysIn := datagen.Generate(spec)
		trueK := datagen.CountDistinct(keysIn)
		h := NewHLL(12)
		h.AddHashes(hashAll(keysIn))
		est := h.Estimate()
		err := math.Abs(est-float64(trueK)) / float64(trueK)
		if err > 0.07 {
			t.Errorf("%s: true K=%d, estimate %.1f off by %.1f%%", sp, trueK, est, 100*err)
		}
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a, b, u := NewHLL(10), NewHLL(10), NewHLL(10)
	keysA := make([]uint64, 5000)
	keysB := make([]uint64, 5000)
	for i := range keysA {
		keysA[i] = uint64(i)
		keysB[i] = uint64(i + 2500) // half overlap
	}
	ha, hb := hashAll(keysA), hashAll(keysB)
	a.AddHashes(ha)
	b.AddHashes(hb)
	u.AddHashes(ha)
	u.AddHashes(hb)
	a.Merge(b)
	if ea, eu := a.Estimate(), u.Estimate(); ea != eu {
		t.Errorf("merged estimate %.2f != union estimate %.2f", ea, eu)
	}
}

// TestCMSNeverUndercounts is the core Count-Min contract: estimates are
// upper bounds on true frequency, even with conservative update and even on
// a deliberately tiny sketch where everything collides.
func TestCMSNeverUndercounts(t *testing.T) {
	for _, logW := range []int{1, 4, 12} {
		c := NewCMS(logW, 4)
		truth := map[uint64]uint64{}
		spec := datagen.Spec{Dist: datagen.HeavyHitter, N: 1 << 14, K: 1 << 8, Seed: 3}
		keysIn := datagen.Generate(spec)
		hs := hashAll(keysIn)
		for i, k := range keysIn {
			truth[k]++
			c.AddHash(hs[i])
		}
		for k, n := range truth {
			if est := c.EstimateHash(hashfn.Murmur2(k)); est < n {
				t.Fatalf("logW=%d: key %d true count %d estimated %d (undercount)", logW, k, n, est)
			}
		}
	}
}

func TestCMSAccuracyOnHeavyHitter(t *testing.T) {
	c := NewCMS(12, 4)
	spec := datagen.Spec{Dist: datagen.HeavyHitter, N: 1 << 16, K: 1 << 10, Seed: 9, HitFraction: 0.5}
	keysIn := datagen.Generate(spec)
	hs := hashAll(keysIn)
	truth := map[uint64]uint64{}
	for i, k := range keysIn {
		truth[k]++
		c.AddHash(hs[i])
	}
	var hotKey, hotN uint64
	for k, n := range truth {
		if n > hotN {
			hotKey, hotN = k, n
		}
	}
	est := c.EstimateHash(hashfn.Murmur2(hotKey))
	if est < hotN || float64(est) > 1.05*float64(hotN) {
		t.Errorf("hot key true count %d estimated %d (want tight overestimate)", hotN, est)
	}
}

func TestCMSMergeNeverUndercounts(t *testing.T) {
	a, b := NewCMS(8, 4), NewCMS(8, 4)
	truth := map[uint64]uint64{}
	for i := 0; i < 4000; i++ {
		k := uint64(i % 97)
		truth[k]++
		if i%2 == 0 {
			a.AddHash(hashfn.Murmur2(k))
		} else {
			b.AddHash(hashfn.Murmur2(k))
		}
	}
	a.Merge(b)
	for k, n := range truth {
		if est := a.EstimateHash(hashfn.Murmur2(k)); est < n {
			t.Fatalf("merged sketch undercounts key %d: true %d est %d", k, n, est)
		}
	}
}

func TestTopKTracksTrueHeavyHitters(t *testing.T) {
	s := NewSketch()
	spec := datagen.Spec{Dist: datagen.Zipf, N: 1 << 16, K: 1 << 12, Seed: 5, Theta: 1.1}
	keysIn := datagen.Generate(spec)
	truth := map[uint64]uint64{}
	for _, k := range keysIn {
		truth[k]++
	}
	hs := hashAll(keysIn)
	const block = 4096
	for lo := 0; lo < len(keysIn); lo += block {
		hi := min(lo+block, len(keysIn))
		s.AddBlock(keysIn[lo:hi], hs[lo:hi])
	}
	// The true #1 key of a theta=1.1 zipf holds a large share; the tracker
	// must have it among its candidates.
	var hotKey, hotN uint64
	for k, n := range truth {
		if n > hotN {
			hotKey, hotN = k, n
		}
	}
	found := false
	for _, e := range s.Top.Items() {
		if e.Key == hotKey {
			found = true
			if e.Est < hotN {
				t.Errorf("hot key est %d below true count %d", e.Est, hotN)
			}
		}
	}
	if !found {
		t.Errorf("true hottest key %d (count %d) not among top-k candidates", hotKey, hotN)
	}
}

func TestTopKOfferSemantics(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer(1, 101, 10)
	tk.Offer(2, 102, 20)
	tk.Offer(3, 103, 5) // below min, rejected
	items := tk.Items()
	if len(items) != 2 || items[0].Key != 2 || items[1].Key != 1 {
		t.Fatalf("unexpected items %+v", items)
	}
	tk.Offer(3, 103, 30) // evicts key 1
	tk.Offer(2, 102, 40) // raises existing
	items = tk.Items()
	if len(items) != 2 || items[0].Key != 2 || items[0].Est != 40 || items[1].Key != 3 {
		t.Fatalf("unexpected items after eviction %+v", items)
	}
}

func TestSketchDigitHistogramTotals(t *testing.T) {
	s := NewSketch()
	spec := datagen.Spec{Dist: datagen.Uniform, N: 10_000, K: 500, Seed: 1}
	keysIn := datagen.Generate(spec)
	hs := hashAll(keysIn)
	s.AddBlock(keysIn, hs)
	var total int64
	for _, n := range s.DigitHist {
		total += n
	}
	if total != int64(len(keysIn)) || s.Rows != int64(len(keysIn)) {
		t.Fatalf("histogram total %d rows %d want %d", total, s.Rows, len(keysIn))
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketch()
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	s.AddBlock(keys, hashAll(keys))
	s.Reset()
	if s.Rows != 0 || s.HLL.Estimate() != 0 {
		t.Fatalf("reset left state behind: rows=%d est=%f", s.Rows, s.HLL.Estimate())
	}
	for _, n := range s.DigitHist {
		if n != 0 {
			t.Fatal("reset left digit histogram behind")
		}
	}
}

// TestAddsDoNotAllocate pins the zero-allocation contract of every add
// path — the sketches run inside the sample loop where allocation would
// show up as GC pressure on the hot path benchmarks.
func TestAddsDoNotAllocate(t *testing.T) {
	s := NewSketch()
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i % 53)
	}
	hs := hashAll(keys)
	if n := testing.AllocsPerRun(20, func() { s.AddBlock(keys, hs) }); n != 0 {
		t.Errorf("Sketch.AddBlock allocates %.1f times per call", n)
	}
	h := NewHLL(12)
	if n := testing.AllocsPerRun(20, func() { h.AddHashes(hs) }); n != 0 {
		t.Errorf("HLL.AddHashes allocates %.1f times per call", n)
	}
	c := NewCMS(12, 4)
	if n := testing.AllocsPerRun(20, func() {
		for _, x := range hs {
			c.AddHash(x)
		}
	}); n != 0 {
		t.Errorf("CMS.AddHash allocates %.1f times per call", n)
	}
}

// Benchmarks mirror SNIPPETS Snippet 2's cost bar: HLL add ~20 ns/op and
// CMS add ~80 ns/op, both zero-alloc. Our adds take pre-computed hashes, so
// they should land well under the bar.
func BenchmarkHLLAddHash(b *testing.B) {
	h := NewHLL(12)
	hs := hashAll(seqKeys(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AddHash(hs[i&4095])
	}
}

func BenchmarkCMSAddHash(b *testing.B) {
	c := NewCMS(12, 4)
	hs := hashAll(seqKeys(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddHash(hs[i&4095])
	}
}

func BenchmarkSketchAddBlock(b *testing.B) {
	s := NewSketch()
	keys := seqKeys(4096)
	hs := hashAll(keys)
	b.ReportAllocs()
	b.SetBytes(int64(len(keys) * 8))
	for i := 0; i < b.N; i++ {
		s.AddBlock(keys, hs)
	}
}

func seqKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}
