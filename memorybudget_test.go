package cacheagg

// Acceptance tests of the public memory budget: a budget below the working
// set degrades to spilling and still produces the exact result within the
// budget plus the documented slack, a transient spill fault mid-degradation
// is absorbed by the retry layer, and a generous budget stays in memory.

import (
	"errors"
	"testing"
	"time"

	"cacheagg/internal/faultfs"
	"cacheagg/internal/memgov"
	"cacheagg/internal/testutil"
)

// budgetInput builds a working set of n rows over k distinct groups with
// one value column, large enough to dwarf small byte budgets.
func budgetInput(n, k int) Input {
	keys := make([]uint64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = uint64(i % k)
		vals[i] = int64(i)
	}
	return Input{
		GroupBy: keys,
		Columns: [][]int64{vals},
		Aggregates: []AggSpec{
			{Func: Count},
			{Func: Sum, Col: 0},
			{Func: Avg, Col: 0},
		},
	}
}

// checkAgainstReference compares a result against an unbudgeted in-memory
// run group-by-group (order-independent: the degraded path re-sorts rows,
// ties between equal hashes may land differently).
func checkAgainstReference(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("groups = %d, want %d", got.Len(), want.Len())
	}
	idx := want.Index()
	for i, g := range got.Groups {
		w, ok := idx[g]
		if !ok {
			t.Fatalf("group %d not in the reference", g)
		}
		for a := range got.Aggs {
			if got.Aggs[a][i] != want.Aggs[a][w] {
				t.Fatalf("group %d, agg %d: %d, want %d", g, a, got.Aggs[a][i], want.Aggs[a][w])
			}
			if got.Float(a, i) != want.Float(a, w) {
				t.Fatalf("group %d, agg %d: float %v, want %v", g, a, got.Float(a, i), want.Float(a, w))
			}
		}
	}
}

func TestMemoryBudgetDegradesToExternalAndCompletes(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := budgetInput(400000, 300000)
	ref, err := Aggregate(in, opts())
	if err != nil {
		t.Fatal(err)
	}

	const budget = 8 << 20
	o := opts()
	o.MemoryBudgetBytes = budget
	res, err := Aggregate(in, o)
	if err != nil {
		t.Fatalf("budget below the working set must degrade, not fail: %v", err)
	}
	checkAgainstReference(t, res, ref)
	if !res.Stats.DegradedToExternal {
		t.Fatal("400k-row working set fit in 8 MiB? degradation not reported")
	}
	if res.Stats.PeakReservedBytes == 0 {
		t.Fatal("no peak footprint recorded")
	}
	// The budget must hold up to the documented slack: per worker one
	// morsel (16384 rows) of decomposed-width intermediates (width 4 for
	// COUNT, SUM, AVG→(SUM,COUNT): 8+8·4+8 bytes/row) plus one
	// reservation-cache grain, and one chunk's load margin.
	perWorker := int64(16384*(8+8*4+8) + memgov.DefaultCacheGrain)
	allowed := int64(budget) + perWorker*int64(o.Workers) + (1 << 20)
	if res.Stats.PeakReservedBytes > allowed {
		t.Fatalf("peak %d exceeds budget %d plus slack %d",
			res.Stats.PeakReservedBytes, budget, allowed-budget)
	}
	// The degraded result keeps the public contract: hash-ordered rows.
	h := res.Hashes()
	if len(h) != res.Len() {
		t.Fatalf("hashes: %d, groups: %d", len(h), res.Len())
	}
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatalf("hash order violated at row %d", i)
		}
	}
}

func TestMemoryBudgetGenerousStaysInMemory(t *testing.T) {
	in := budgetInput(50000, 2000)
	ref, err := Aggregate(in, opts())
	if err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.MemoryBudgetBytes = 1 << 30
	res, err := Aggregate(in, o)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
	if res.Stats.DegradedToExternal {
		t.Fatal("1 GiB budget degraded to spilling")
	}
	if res.Stats.PeakReservedBytes == 0 {
		t.Fatal("governed run recorded no footprint")
	}
}

func TestMemoryBudgetTransientSpillFaultRetried(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	flaky := faultfs.NewFlaky(faultfs.OS(), faultfs.OpWrite, 30, 2)
	testHookExternalFS = flaky
	testHookExternalRetry = faultfs.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
	defer func() {
		testHookExternalFS = nil
		testHookExternalRetry = faultfs.RetryPolicy{}
	}()

	in := budgetInput(400000, 300000)
	ref, err := Aggregate(in, opts())
	if err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.MemoryBudgetBytes = 8 << 20
	res, err := Aggregate(in, o)
	if err != nil {
		t.Fatalf("transient spill fault not absorbed: %v", err)
	}
	if !flaky.Triggered() {
		t.Fatal("flaky fault never fired; the run did not spill through the hook")
	}
	checkAgainstReference(t, res, ref)
	if !res.Stats.DegradedToExternal {
		t.Fatal("degradation not reported")
	}
	if res.Stats.SpillRetries == 0 {
		t.Fatal("retries happened but Stats.SpillRetries = 0")
	}
}

func TestMemoryBudgetImpossiblySmallFailsTyped(t *testing.T) {
	// A budget below even the out-of-core path's floor must fail with the
	// typed error, not hang or OOM.
	o := opts()
	o.MemoryBudgetBytes = 4 << 10
	_, err := Aggregate(budgetInput(100000, 100000), o)
	if err == nil {
		t.Fatal("4 KiB budget succeeded")
	}
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
}

func TestMemoryBudgetNegativeRejected(t *testing.T) {
	o := opts()
	o.MemoryBudgetBytes = -1
	if _, err := Aggregate(budgetInput(10, 5), o); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := AggregateExternal(budgetInput(10, 5), opts(),
		ExternalOptions{MemoryBudgetBytes: -1}); err == nil {
		t.Fatal("negative external budget accepted")
	}
}

func TestExternalOptionsByteBudget(t *testing.T) {
	// The byte budget on the explicit external API: tight budget, exact
	// result, new stats fields populated.
	in := budgetInput(200000, 150000)
	res, err := AggregateExternal(in, opts(), ExternalOptions{
		MemoryBudgetBytes: 6 << 20,
		TempDir:           t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 150000 {
		t.Fatalf("groups = %d, want 150000", res.Len())
	}
	if res.Stats.PeakReservedBytes == 0 {
		t.Fatal("no peak footprint recorded")
	}
	if res.Stats.ResidentPartitions == 0 && res.Stats.EvictedPartitions == 0 {
		t.Fatal("hybrid mode never engaged")
	}
}
