package intern

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	cases := [][]Value{
		{{Kind: U64Value, U64: 0}},
		{{Kind: U64Value, U64: ^uint64(0)}},
		{{Kind: StrValue, Str: ""}},
		{{Kind: StrValue, Str: "https://example.com/a/b?c=d"}},
		{{Kind: NullValue}},
		{{Kind: NullValue}, {Kind: NullValue}},
		{{Kind: U64Value, U64: 7}, {Kind: StrValue, Str: "x"}, {Kind: NullValue}},
		{{Kind: StrValue, Str: strings.Repeat("k", 300)}}, // multi-byte uvarint length
	}
	for _, vals := range cases {
		enc := AppendKey(nil, vals)
		dec, err := DecodeKey(enc, nil)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("decoded %d values, want %d", len(dec), len(vals))
		}
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("value %d: got %+v want %+v", i, dec[i], vals[i])
			}
		}
		// decode ∘ encode fixed point: re-encoding the decoded values must
		// reproduce the bytes exactly.
		if re := AppendKey(nil, dec); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, enc)
		}
	}
}

func TestCodecEmptyKeyDecodesEmpty(t *testing.T) {
	dec, err := DecodeKey(nil, nil)
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty key: got %v, %v", dec, err)
	}
}

func TestCodecMalformed(t *testing.T) {
	cases := map[string][]byte{
		"unknown tag":          {0x7f},
		"truncated u64":        {tagU64, 1, 2, 3},
		"truncated length":     {tagBytes, 0x80},
		"truncated payload":    {tagBytes, 5, 'a', 'b'},
		"non-minimal length":   {tagBytes, 0x81, 0x00, 'a'},
		"overflowing length":   append([]byte{tagBytes}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02),
		"trailing after value": {tagNull, tagU64, 1, 2, 3},
	}
	for name, enc := range cases {
		if _, err := DecodeKey(enc, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s (%x): want ErrMalformed, got %v", name, enc, err)
		}
	}
}

func TestCodecDistinctKeysDistinctBytes(t *testing.T) {
	// Encodings that could be confused under a sloppy codec must differ:
	// concatenation ambiguity, type ambiguity, NULL vs empty string.
	keys := [][]Value{
		{{Kind: StrValue, Str: "ab"}, {Kind: StrValue, Str: "c"}},
		{{Kind: StrValue, Str: "a"}, {Kind: StrValue, Str: "bc"}},
		{{Kind: StrValue, Str: "abc"}},
		{{Kind: U64Value, U64: 'a'}},
		{{Kind: StrValue, Str: "a"}},
		{{Kind: NullValue}},
		{{Kind: StrValue, Str: ""}},
		{{Kind: U64Value, U64: 0}},
	}
	seen := map[string]int{}
	for i, vals := range keys {
		enc := string(AppendKey(nil, vals))
		if j, dup := seen[enc]; dup {
			t.Fatalf("keys %d and %d share encoding %x", i, j, enc)
		}
		seen[enc] = i
	}
}

func TestCodecUvarintMinimal(t *testing.T) {
	// Every length we emit must round-trip through the strict decoder.
	for _, n := range []uint64{0, 1, 127, 128, 129, 16383, 16384, 1 << 40, ^uint64(0)} {
		enc := appendUvarint(nil, n)
		got, used, err := uvarint(enc)
		if err != nil || got != n || used != len(enc) {
			t.Fatalf("uvarint(%d): got %d (%d bytes), err %v", n, got, used, err)
		}
	}
}
