package cacheagg

// Multi-column and string GROUP BY, as thin shapes over AggregateGeneral:
// the key columns become a general-key schema, the concurrent interning
// layer (internal/intern) collapses each distinct tuple to a dense id,
// and the decoded result columns are returned in the historical forms.

import "fmt"

// MultiInput is a GROUP BY over several uint64 key columns.
type MultiInput struct {
	// GroupBy holds the grouping key columns (all of equal length).
	GroupBy [][]uint64
	// Columns are the aggregate input columns.
	Columns [][]int64
	// Aggregates lists the aggregate output columns to compute.
	Aggregates []AggSpec
}

// MultiResult is the result of AggregateMulti: row r of every column of
// GroupCols (one per input key column) plus row r of every aggregate
// column describe one group.
type MultiResult struct {
	GroupCols [][]uint64
	Aggs      [][]int64
	Stats     Stats

	inner *GeneralResult
}

// Len returns the number of groups.
func (r *MultiResult) Len() int {
	if len(r.GroupCols) == 0 {
		return 0
	}
	return len(r.GroupCols[0])
}

// Float returns aggregate column a of group idx as float64 (exact for Avg).
func (r *MultiResult) Float(a, idx int) float64 { return r.inner.Float(a, idx) }

// AggregateMulti executes a GROUP BY over multiple uint64 key columns.
//
// The key columns are interned into dense 64-bit ids first through the
// concurrent dictionary; the encoding is batched and hash-amortized, but
// for very large inputs with few columns consider packing keys manually
// (e.g. two 32-bit keys into one uint64) to skip the dictionary entirely.
func AggregateMulti(in MultiInput, opt Options) (*MultiResult, error) {
	if len(in.GroupBy) == 0 {
		return nil, fmt.Errorf("cacheagg: AggregateMulti needs at least one key column")
	}
	gcols := make([]KeyColumn, len(in.GroupBy))
	for i, col := range in.GroupBy {
		if col == nil {
			col = []uint64{}
		}
		gcols[i] = KeyColumn{Uint64s: col}
	}
	res, err := AggregateGeneral(GeneralInput{
		GroupBy:    gcols,
		Columns:    in.Columns,
		Aggregates: in.Aggregates,
	}, opt)
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, len(res.GroupCols))
	for i := range res.GroupCols {
		out[i] = res.GroupCols[i].Uint64s
	}
	return &MultiResult{
		GroupCols: out,
		Aggs:      res.Aggs,
		Stats:     res.Stats,
		inner:     res,
	}, nil
}

// StringInput is a GROUP BY over a string key column.
type StringInput struct {
	GroupBy    []string
	Columns    [][]int64
	Aggregates []AggSpec
}

// StringResult is the result of AggregateStrings.
type StringResult struct {
	Groups []string
	Aggs   [][]int64
	Stats  Stats

	inner *GeneralResult
}

// Len returns the number of groups.
func (r *StringResult) Len() int { return len(r.Groups) }

// Float returns aggregate column a of group idx as float64 (exact for Avg).
func (r *StringResult) Float(a, idx int) float64 { return r.inner.Float(a, idx) }

// AggregateStrings executes a GROUP BY over a string key column by
// interning the strings into dense ids.
func AggregateStrings(in StringInput, opt Options) (*StringResult, error) {
	keys := in.GroupBy
	if keys == nil {
		keys = []string{}
	}
	res, err := AggregateGeneral(GeneralInput{
		GroupBy:    []KeyColumn{{Strings: keys}},
		Columns:    in.Columns,
		Aggregates: in.Aggregates,
	}, opt)
	if err != nil {
		return nil, err
	}
	return &StringResult{
		Groups: res.GroupCols[0].Strings,
		Aggs:   res.Aggs,
		Stats:  res.Stats,
		inner:  res,
	}, nil
}
