package serve

// Admission control: one global memgov ledger arbitrates memory between
// concurrent queries. Every query reserves its estimated footprint up
// front; a query that cannot reserve waits in a bounded FIFO queue with
// per-class fairness, and instead of waiting forever it walks a
// degradation ladder — full grant, shrunken grant, forced-external grant —
// before giving up with a typed, Retry-After-stamped rejection.
//
// The state machine of one query (docs/SERVING.md has the diagram):
//
//	arrive ── queue full, outranks nothing ──▶ rejected (queue_full)
//	  │  ▲ queue full, outranks queued low-priority work: that work
//	  │  └─ is evicted instead (shed)
//	  ▼
//	queued ── context cancelled/expired ──▶ cancelled | deadline
//	  │ (FIFO with per-class fairness; head of line goes on)
//	  ▼
//	reserving ── full estimate within ShrinkAfter ──▶ admitted (full)
//	  │ ├─ shrunken estimate within ExternalAfter ─▶ admitted (shrunk)
//	  │ ├─ external floor within MaxWait ──────────▶ admitted (external)
//	  │ └─ context cancelled/expired ──────────────▶ cancelled | deadline
//	  ▼
//	rejected (budget_unavailable, Retry-After hinted)
//
// The admission ledger is a *planning* ledger: it tracks grants, not live
// bytes. Each admitted query enforces its own grant byte-accurately via
// Options.MemoryBudgetBytes (its private governor), so the sum of grants
// never exceeds the global budget and the ledger provably drains to zero
// when the last query releases.

import (
	"container/list"
	"context"
	"sync"
	"time"

	"cacheagg/internal/hashfn"
	"cacheagg/internal/memgov"
	"cacheagg/internal/partition"
)

// GrantMode says which rung of the degradation ladder admitted the query.
type GrantMode int

const (
	// GrantFull is the full cost estimate: the query should run in
	// memory.
	GrantFull GrantMode = iota
	// GrantShrunk is a reduced reservation: the query may degrade to the
	// out-of-core path for part of its work.
	GrantShrunk
	// GrantExternal is the floor reservation: the query is forced
	// through the out-of-core path (spilling to disk) so it completes
	// under pressure instead of being rejected.
	GrantExternal
)

// String names the mode for response headers and logs.
func (m GrantMode) String() string {
	switch m {
	case GrantShrunk:
		return "shrunk"
	case GrantExternal:
		return "external"
	default:
		return "full"
	}
}

// Grant is an admitted query's budget reservation. Release must be called
// exactly once when the query finishes (success or failure); it is
// idempotent to make error paths easy.
type Grant struct {
	// Bytes is the reserved budget, to be enforced by the query's own
	// governor (Options.MemoryBudgetBytes).
	Bytes int64
	// Mode is the ladder rung that admitted the query.
	Mode GrantMode
	// Queued reports that the query waited in the admission queue.
	Queued bool
	// WaitedFor is the time spent between Admit and the grant.
	WaitedFor time.Duration

	ctrl     *Controller
	released bool
	mu       sync.Mutex
}

// Release returns the reservation to the global ledger and hands the
// admission slot to the next queued query.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	done := g.released
	g.released = true
	g.mu.Unlock()
	if done {
		return
	}
	g.ctrl.gov.Release(g.Bytes)
}

// AdmitConfig tunes the controller. The zero value selects the defaults.
type AdmitConfig struct {
	// BudgetBytes is the global memory budget shared by all concurrent
	// queries. <= 0 means unlimited (admission always grants instantly;
	// queueing and degradation never engage).
	BudgetBytes int64
	// MaxQueue bounds the admission wait queue (default 64).
	MaxQueue int
	// ShrinkAfter is how long the head-of-line query waits for its full
	// estimate before the ladder shrinks it (default 100 ms).
	ShrinkAfter time.Duration
	// ExternalAfter is how long it waits for the shrunken estimate
	// before being forced external (default 250 ms).
	ExternalAfter time.Duration
	// MaxWait bounds the total budget wait of one query (default 5 s).
	// A request deadline shorter than MaxWait wins.
	MaxWait time.Duration
	// MinGrantBytes is the forced-external floor reservation — enough
	// for the out-of-core path's fixed machinery (default 8 MiB).
	MinGrantBytes int64
	// RetryHint is the Retry-After stamped on typed rejections
	// (default 1 s).
	RetryHint time.Duration
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 100 * time.Millisecond
	}
	if c.ExternalAfter <= 0 {
		c.ExternalAfter = 250 * time.Millisecond
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 5 * time.Second
	}
	if c.MinGrantBytes <= 0 {
		c.MinGrantBytes = 8 << 20
	}
	if c.RetryHint <= 0 {
		c.RetryHint = time.Second
	}
	return c
}

// admWaiter is one query parked in the admission queue. ch carries its
// verdict: nil = proceed to the reserving state, a typed error = evicted.
type admWaiter struct {
	class  Priority
	seq    uint64
	ch     chan error
	elem   *list.Element
	queued bool // still in a queue (guarded by Controller.mu)
}

// Controller is the admission gate. One per server.
type Controller struct {
	cfg AdmitConfig
	gov *memgov.Governor

	mu       sync.Mutex
	queues   [3]*list.List // index = Priority; front = oldest
	queued   int
	active   bool   // a query currently owns the reserving state
	seq      uint64 // arrival stamper
	dispatch uint64 // fairness counter
	draining bool

	metrics *Metrics
}

// NewController builds an admission controller over a fresh ledger.
func NewController(cfg AdmitConfig, m *Metrics) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, gov: memgov.New(cfg.BudgetBytes), metrics: m}
	for i := range c.queues {
		c.queues[i] = list.New()
	}
	return c
}

// Ledger exposes the global reservation ledger (metrics, tests).
func (c *Controller) Ledger() *memgov.Governor { return c.gov }

// QueueLen returns the number of queries waiting for admission.
func (c *Controller) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// SetDraining stops admission: subsequent Admit calls fail with
// ErrDraining. Already-queued queries are allowed to proceed (they were
// accepted) and in-flight grants are unaffected.
func (c *Controller) SetDraining() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Admit reserves need bytes for a query of the given class, blocking in
// the bounded FIFO queue and walking the degradation ladder as required.
// It returns a Grant, or a typed *Error (queue full / shed / budget
// unavailable / draining), or ctx's error when the caller's context ends
// first.
func (c *Controller) Admit(ctx context.Context, class Priority, need int64) (*Grant, error) {
	start := time.Now()
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, errf(ErrDraining, nil, "server is draining")
	}
	if !c.active && c.queued == 0 {
		c.active = true
		c.mu.Unlock()
		return c.reserve(ctx, need, false, start)
	}
	// Queue, shedding lower-priority work if full and outranked.
	if c.queued >= c.cfg.MaxQueue {
		if !c.shedLocked(class) {
			c.mu.Unlock()
			if c.metrics != nil {
				c.metrics.RejectedQueue.Add(1)
			}
			return nil, withRetry(errf(ErrAdmissionQueueFull, nil,
				"admission queue at capacity %d", c.cfg.MaxQueue), c.cfg.RetryHint)
		}
	}
	c.seq++
	w := &admWaiter{class: class, seq: c.seq, ch: make(chan error, 1), queued: true}
	w.elem = c.queues[class].PushBack(w)
	c.queued++
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.mu.Lock()
		if w.queued {
			c.queues[class].Remove(w.elem)
			w.queued = false
			c.queued--
			c.mu.Unlock()
			return nil, ctx.Err()
		}
		c.mu.Unlock()
		// Already dispatched or evicted: consume the verdict so the
		// admission slot is not lost.
		verdict := <-w.ch
		if verdict == nil {
			c.dispatchNext()
		}
		return nil, ctx.Err()
	case verdict := <-w.ch:
		if verdict != nil {
			return nil, verdict
		}
		return c.reserve(ctx, need, true, start)
	}
}

// shedLocked evicts the youngest waiter of the lowest class strictly
// below the arriving class, making room under overload. Reports whether a
// victim was evicted. Caller holds c.mu.
func (c *Controller) shedLocked(arriving Priority) bool {
	for class := PriorityLow; class < arriving; class++ {
		q := c.queues[class]
		if q.Len() == 0 {
			continue
		}
		victim := q.Back().Value.(*admWaiter)
		q.Remove(victim.elem)
		victim.queued = false
		c.queued--
		victim.ch <- withRetry(errf(ErrShed, nil,
			"%s-priority work shed for higher-priority arrival", class), c.cfg.RetryHint)
		if c.metrics != nil {
			c.metrics.Shed.Add(1)
		}
		return true
	}
	return false
}

// dispatchNext transfers the reserving state to the next queued waiter,
// or clears it when the queue is empty. Fairness: normally the oldest
// waiter of the highest non-empty class wins, but every fourth dispatch
// picks the globally oldest waiter regardless of class, so low-priority
// work cannot starve under a steady high-priority stream.
func (c *Controller) dispatchNext() {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.pickLocked()
	if w == nil {
		c.active = false
		return
	}
	c.queues[w.class].Remove(w.elem)
	w.queued = false
	c.queued--
	w.ch <- nil
}

func (c *Controller) pickLocked() *admWaiter {
	c.dispatch++
	if c.dispatch%4 == 0 {
		var oldest *admWaiter
		for _, q := range c.queues {
			if front := q.Front(); front != nil {
				w := front.Value.(*admWaiter)
				if oldest == nil || w.seq < oldest.seq {
					oldest = w
				}
			}
		}
		if oldest != nil {
			return oldest
		}
	}
	for class := PriorityHigh; class >= PriorityLow; class-- {
		if front := c.queues[class].Front(); front != nil {
			return front.Value.(*admWaiter)
		}
	}
	return nil
}

// reserve walks the degradation ladder while holding the reserving state;
// the state transfers to the next waiter on every exit path.
func (c *Controller) reserve(ctx context.Context, need int64, queued bool, start time.Time) (*Grant, error) {
	defer c.dispatchNext()
	if need < c.cfg.MinGrantBytes {
		need = c.cfg.MinGrantBytes
	}
	if b := c.gov.Budget(); b > 0 && need > b {
		need = b // a query bigger than the machine still gets the machine
	}
	grant := func(bytes int64, mode GrantMode) (*Grant, error) {
		g := &Grant{Bytes: bytes, Mode: mode, Queued: queued,
			WaitedFor: time.Since(start), ctrl: c}
		if c.metrics != nil {
			c.metrics.Admitted.Add(1)
			if queued {
				c.metrics.QueuedAdmitted.Add(1)
			}
			switch mode {
			case GrantShrunk:
				c.metrics.DegradedShrunk.Add(1)
			case GrantExternal:
				c.metrics.DegradedExternal.Add(1)
			}
		}
		return g, nil
	}
	// Rung 0: the estimate fits right now.
	if c.gov.TryReserve(need) {
		return grant(need, GrantFull)
	}
	// Rung 1: wait briefly for the full estimate.
	switch err := c.waitReserve(ctx, need, c.cfg.ShrinkAfter); {
	case err == nil:
		return grant(need, GrantFull)
	case ctx.Err() != nil:
		return nil, ctx.Err()
	}
	// Rung 2: shrink the grant — the query trades memory for spill I/O.
	shrunk := max(need/2, c.cfg.MinGrantBytes)
	if shrunk < need {
		switch err := c.waitReserve(ctx, shrunk, c.cfg.ExternalAfter); {
		case err == nil:
			return grant(shrunk, GrantShrunk)
		case ctx.Err() != nil:
			return nil, ctx.Err()
		}
	}
	// Rung 3: the external floor — forced out-of-core execution.
	if c.cfg.MinGrantBytes < need {
		switch err := c.waitReserve(ctx, c.cfg.MinGrantBytes, c.cfg.MaxWait); {
		case err == nil:
			return grant(c.cfg.MinGrantBytes, GrantExternal)
		case ctx.Err() != nil:
			return nil, ctx.Err()
		}
	} else {
		// Already at the floor; give it the rest of the wait budget.
		switch err := c.waitReserve(ctx, need, c.cfg.MaxWait); {
		case err == nil:
			return grant(need, GrantExternal)
		case ctx.Err() != nil:
			return nil, ctx.Err()
		}
	}
	if c.metrics != nil {
		c.metrics.RejectedBudget.Add(1)
	}
	return nil, withRetry(errf(ErrBudgetUnavailable, nil,
		"no budget for %d bytes within %v (%d of %d reserved)",
		c.cfg.MinGrantBytes, c.cfg.MaxWait, c.gov.Reserved(), c.gov.Budget()),
		c.cfg.RetryHint)
}

// waitReserve blocks on the ledger for up to bound (the caller's context
// still wins). A nil return means the reservation was granted.
func (c *Controller) waitReserve(ctx context.Context, n int64, bound time.Duration) error {
	wctx, cancel := context.WithTimeout(ctx, bound)
	defer cancel()
	return c.gov.TryReserveOrWait(wctx, n)
}

// EstimateCost sizes a query's up-front reservation from its input: the
// per-worker fixed machinery of the operator (cache-sized hash table,
// write-combining scatter buffers, intake scratch) plus the intermediate
// state the input could produce. Deliberately a planning number — the
// query's own byte-accurate governor enforces the grant; the estimate
// only has to be the right order of magnitude for admission to slot
// queries sensibly.
func EstimateCost(rows, aggWidth, workers, cacheBytes int) int64 {
	if workers <= 0 {
		workers = 1
	}
	if cacheBytes <= 0 {
		cacheBytes = 4 << 20 // operator default
	}
	width := aggWidth + 1 // +1: AVG decomposes into SUM and COUNT
	perWorker := int64(2*cacheBytes) +
		int64(hashfn.Fanout*partition.DefaultBufRows*8*(2+width)) +
		256<<10
	intermediates := int64(rows) * int64(16+8*width)
	return int64(workers)*perWorker + intermediates + 1<<20
}
