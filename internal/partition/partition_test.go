package partition

import (
	"testing"
	"testing/quick"

	"cacheagg/internal/hashfn"
	"cacheagg/internal/runs"
	"cacheagg/internal/xrand"
)

// genRows builds n random rows with the given number of state words.
func genRows(seed uint64, n, words int) (hashes, keys []uint64, states [][]uint64) {
	rng := xrand.NewXoshiro256(seed)
	hashes = make([]uint64, n)
	keys = make([]uint64, n)
	states = make([][]uint64, words)
	for w := range states {
		states[w] = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		keys[i] = rng.Next() % 1000
		hashes[i] = hashfn.Murmur2(keys[i])
		for w := 0; w < words; w++ {
			states[w][i] = rng.Next()
		}
	}
	return
}

type rowID struct {
	h, k, s0 uint64
}

func collect(t *testing.T, byDigit [][]*runs.Run, level, words int) (map[rowID]int, int) {
	t.Helper()
	seen := map[rowID]int{}
	total := 0
	for digit, rs := range byDigit {
		for _, r := range rs {
			if err := r.Validate(words); err != nil {
				t.Fatal(err)
			}
			for i := range r.Keys {
				if got := hashfn.Digit(r.Hashes[i], level); got != digit {
					t.Fatalf("row with digit %d landed in partition %d", got, digit)
				}
				id := rowID{h: r.Hashes[i], k: r.Keys[i]}
				if words > 0 {
					id.s0 = r.States[0][i]
				}
				seen[id]++
				total++
			}
		}
	}
	return seen, total
}

func TestScatterPreservesMultiset(t *testing.T) {
	const n = 5000
	hashes, keys, states := genRows(1, n, 2)
	s := New(Config{Level: 0, Words: 2, BufRows: 8, ChunkRows: 64})
	s.Scatter(hashes, keys, states)
	if s.Rows() != n {
		t.Fatalf("Rows = %d, want %d", s.Rows(), n)
	}
	got, total := collect(t, s.Seal(), 0, 2)
	if total != n {
		t.Fatalf("scattered %d rows, want %d", total, n)
	}
	want := map[rowID]int{}
	for i := 0; i < n; i++ {
		want[rowID{hashes[i], keys[i], states[0][i]}]++
	}
	for id, c := range want {
		if got[id] != c {
			t.Fatalf("row %+v count %d, want %d", id, got[id], c)
		}
	}
}

func TestScatterOrderStableWithinPartition(t *testing.T) {
	// Rows of the same partition must arrive in input order (stability
	// keeps the mapping between grouping and aggregate columns aligned).
	const n = 2000
	hashes := make([]uint64, n)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		hashes[i] = uint64(i%4) << 56 // 4 partitions, round robin
		keys[i] = uint64(i)           // input sequence number
	}
	s := New(Config{Level: 0, Words: 0, BufRows: 16, ChunkRows: 32})
	s.Scatter(hashes, keys, nil)
	byDigit := s.Seal()
	for digit, rs := range byDigit {
		last := int64(-1)
		for _, r := range rs {
			for _, k := range r.Keys {
				if int64(k) <= last {
					t.Fatalf("partition %d: key %d after %d — order broken", digit, k, last)
				}
				last = int64(k)
			}
		}
	}
}

func TestScatterLevelSelectsDigit(t *testing.T) {
	const n = 1000
	hashes, keys, _ := genRows(2, n, 0)
	for level := 0; level < 3; level++ {
		s := New(Config{Level: level})
		s.Scatter(hashes, keys, nil)
		if s.Level() != level {
			t.Fatalf("Level() = %d", s.Level())
		}
		_, total := collect(t, s.Seal(), level, 0)
		if total != n {
			t.Fatalf("level %d: %d rows, want %d", level, total, n)
		}
	}
}

func TestScatterRunAndAdd(t *testing.T) {
	hashes, keys, states := genRows(3, 100, 1)
	r := &runs.Run{Hashes: hashes, Keys: keys, States: states}

	a := New(Config{Level: 0, Words: 1})
	a.ScatterRun(r)

	b := New(Config{Level: 0, Words: 1})
	st := make([]uint64, 1)
	for i := range hashes {
		st[0] = states[0][i]
		b.Add(hashes[i], keys[i], st)
	}

	ga, na := collect(t, a.Seal(), 0, 1)
	gb, nb := collect(t, b.Seal(), 0, 1)
	if na != nb || na != 100 {
		t.Fatalf("row counts differ: %d vs %d", na, nb)
	}
	for id, c := range ga {
		if gb[id] != c {
			t.Fatalf("Add and Scatter disagree on %+v", id)
		}
	}
}

func TestSealIntoBuckets(t *testing.T) {
	hashes, keys, _ := genRows(4, 3000, 0)
	s := New(Config{Level: 0})
	s.Scatter(hashes, keys, nil)
	buckets := make([]*runs.Bucket, hashfn.Fanout)
	for i := range buckets {
		buckets[i] = &runs.Bucket{}
	}
	s.SealInto(buckets)
	total := 0
	for _, b := range buckets {
		total += b.Rows()
	}
	if total != 3000 {
		t.Fatalf("buckets hold %d rows, want 3000", total)
	}
}

func TestSealIntoWrongLengthPanics(t *testing.T) {
	s := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SealInto(make([]*runs.Bucket, 3))
}

func TestScatterMismatchedColumnsPanics(t *testing.T) {
	s := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Scatter(make([]uint64, 3), make([]uint64, 4), nil)
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for i, cfg := range []Config{{Level: -1}, {Level: hashfn.MaxLevels}, {Words: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

// TestNaiveMatchesTuned: the tuned SWC scatterer and the naive per-row
// scatter must produce identical partition contents (the Figure 3 variants
// differ only in speed, never in output).
func TestNaiveMatchesTuned(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%3000 + 1
		hashes, keys, states := genRows(seed, n, 1)
		s := New(Config{Level: 0, Words: 1, BufRows: 8})
		s.Scatter(hashes, keys, states)
		tuned := s.Seal()
		naive := NaiveScatter(0, 1, hashes, keys, states)
		for p := 0; p < hashfn.Fanout; p++ {
			var tu, na []rowID
			for _, r := range tuned[p] {
				for i := range r.Keys {
					tu = append(tu, rowID{r.Hashes[i], r.Keys[i], r.States[0][i]})
				}
			}
			for _, r := range naive[p] {
				for i := range r.Keys {
					na = append(na, rowID{r.Hashes[i], r.Keys[i], r.States[0][i]})
				}
			}
			if len(tu) != len(na) {
				return false
			}
			for i := range tu {
				if tu[i] != na[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyScatter(t *testing.T) {
	s := New(Config{Level: 0, Words: 0})
	s.Scatter(nil, nil, nil)
	for p, rs := range s.Seal() {
		if len(rs) != 0 {
			t.Fatalf("partition %d has %d runs from empty input", p, len(rs))
		}
	}
}

func BenchmarkScatterSWC(b *testing.B) {
	const n = 1 << 16
	hashes, keys, _ := genRows(1, n, 0)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{Level: 0})
		s.Scatter(hashes, keys, nil)
		s.Flush()
	}
}

func BenchmarkScatterNaive(b *testing.B) {
	const n = 1 << 16
	hashes, keys, _ := genRows(1, n, 0)
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveScatter(0, 0, hashes, keys, nil)
	}
}

func TestDropHashesProducesNilHashColumn(t *testing.T) {
	hashes, keys, states := genRows(11, 2000, 1)
	s := New(Config{Level: 0, Words: 1, DropHashes: true})
	s.Scatter(hashes, keys, states)
	total := 0
	for digit, rs := range s.Seal() {
		for _, r := range rs {
			if r.Hashes != nil {
				t.Fatal("DropHashes run still has a hash column")
			}
			if err := r.Validate(1); err != nil {
				t.Fatal(err)
			}
			// Digit correctness must hold via recomputation.
			for i := range r.Keys {
				if hashfn.Digit(hashfn.Murmur2(r.Keys[i]), 0) != digit {
					t.Fatalf("key %d in wrong partition %d", r.Keys[i], digit)
				}
			}
			total += r.Len()
		}
	}
	if total != 2000 {
		t.Fatalf("scattered %d rows", total)
	}
}

func TestDropHashesSurvivesReset(t *testing.T) {
	_, keys, _ := genRows(12, 100, 0)
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = hashfn.Murmur2(k)
	}
	s := New(Config{Level: 0, DropHashes: true})
	s.Scatter(hashes, keys, nil)
	s.Flush()
	s.Seal()
	s.Reset(1)
	s.Scatter(hashes, keys, nil)
	for _, rs := range s.Seal() {
		for _, r := range rs {
			if r.Hashes != nil {
				t.Fatal("DropHashes lost across Reset")
			}
		}
	}
}
