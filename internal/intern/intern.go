package intern

// The concurrent dictionary. Design goals, in order:
//
//  1. Lock-free reads on the hot path. Encoding a batch whose keys are all
//     already interned takes no lock and performs no allocation: each row
//     hashes, probes one shard's published open-addressed index, and
//     compares bytes. Writers synchronize with readers through the
//     per-slot meta word (a release store publishes the slot's id and key
//     bytes, an acquire load observes them) and through the shard's
//     atomically republished index pointer on growth — the epoch publish.
//  2. Dense ids. A global atomic counter assigns ids 0, 1, 2, … in intern
//     order; the id → key-bytes directory is a lock-free paged array, so
//     decode at emit time is an index, not a map lookup.
//  3. Append-only storage. Key bytes live in per-shard slabs that are
//     never moved or freed, so published references stay valid forever
//     and a grow copies O(slots) words, never the key bytes themselves.
//
// Memory model notes: a writer fills slot.id and slot.key with plain
// stores and then release-stores slot.meta; readers acquire-load meta
// before touching id/key, which establishes the happens-before edge the
// race detector (and the hardware) needs. Slots are never reused or
// rewritten — an index is append-only until it is replaced wholesale by a
// grow, and the old index stays valid (if stale) for readers still
// probing it: a miss there falls through to the locked slow path, which
// probes the current index again.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"cacheagg/internal/hashfn"
)

const (
	shardBits = 6
	numShards = 1 << shardBits

	// pageBits sizes the id → key directory pages (4096 refs each).
	pageBits = 12
	pageSize = 1 << pageBits

	// slabChunk is the allocation unit of per-shard key-byte storage.
	slabChunk = 64 << 10

	// initialSlots is a fresh shard index's slot count (power of two).
	initialSlots = 128
)

// slot is one entry of a shard's open-addressed index.
type slot struct {
	// meta is 0 when empty, else hash<<1|1. The release store of meta
	// publishes id and key.
	meta atomic.Uint64
	id   uint64
	key  []byte
}

// shardIndex is one published generation of a shard's hash index. Readers
// treat it as immutable-except-appends; growth replaces it wholesale.
type shardIndex struct {
	mask  uint64
	slots []slot
}

// lookup probes for the key with hash h. Lock-free; safe against
// concurrent inserts into the same index.
func (x *shardIndex) lookup(h uint64, key []byte) (uint64, bool) {
	m := h<<1 | 1
	i := h & x.mask
	for {
		s := &x.slots[i]
		meta := s.meta.Load()
		if meta == 0 {
			return 0, false
		}
		if meta == m && bytes.Equal(s.key, key) {
			return s.id, true
		}
		i = (i + 1) & x.mask
	}
}

// shard is one lock-striped partition of the dictionary, selected by the
// top shardBits of the key hash.
type shard struct {
	mu   sync.Mutex // writers only; readers never take it
	idx  atomic.Pointer[shardIndex]
	used int    // occupied slots in the current index (guarded by mu)
	slab []byte // current append-only key-byte chunk (guarded by mu)
}

// page is one block of the id → key-bytes decode directory.
type page [pageSize][]byte

// Interner is the concurrent dictionary: encoded key bytes → dense uint64
// ids, with a reverse directory for decode. Safe for concurrent use; the
// zero value is not usable, construct with New.
type Interner struct {
	shards [numShards]shard
	next   atomic.Uint64 // dense id allocator; also Len
	bytes  atomic.Int64  // total interned key bytes
	grows  atomic.Int64  // shard index growths (epoch republications)

	dirMu sync.Mutex
	dir   atomic.Pointer[[]*page]
}

// New returns an empty dictionary.
func New() *Interner {
	return &Interner{}
}

// Len returns the number of distinct keys interned so far.
func (it *Interner) Len() int { return int(it.next.Load()) }

// Bytes returns the total encoded size of all interned keys — the slab
// footprint, excluding index overhead.
func (it *Interner) Bytes() int64 { return it.bytes.Load() }

// Grows returns how many times a shard index grew and republished.
func (it *Interner) Grows() int64 { return it.grows.Load() }

// Intern returns the dense id of the encoded key, assigning the next id on
// first appearance. key is copied on insert; the caller may reuse the
// buffer. onGrow, when non-nil, is called (under the shard lock) each time
// the shard's index grows — the intern-grow trace hook.
func (it *Interner) Intern(h uint64, key []byte, onGrow func(shard, newSlots int)) uint64 {
	sh := &it.shards[h>>(64-shardBits)]
	if idx := sh.idx.Load(); idx != nil {
		if id, ok := idx.lookup(h, key); ok {
			return id
		}
	}
	return it.internSlow(sh, h, key, onGrow)
}

// Lookup returns the id of the encoded key without inserting.
func (it *Interner) Lookup(h uint64, key []byte) (uint64, bool) {
	idx := it.shards[h>>(64-shardBits)].idx.Load()
	if idx == nil {
		return 0, false
	}
	return idx.lookup(h, key)
}

func (it *Interner) internSlow(sh *shard, h uint64, key []byte, onGrow func(int, int)) uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx := sh.idx.Load()
	if idx == nil {
		idx = &shardIndex{mask: initialSlots - 1, slots: make([]slot, initialSlots)}
		sh.idx.Store(idx)
	} else if id, ok := idx.lookup(h, key); ok {
		// Another writer interned this key between our lock-free miss and
		// taking the lock.
		return id
	}
	if (sh.used+1)*4 > len(idx.slots)*3 {
		idx = sh.grow(idx)
		it.grows.Add(1)
		if onGrow != nil {
			onGrow(int(h>>(64-shardBits)), len(idx.slots))
		}
	}

	// Copy the key bytes into the shard's append-only slab.
	if len(sh.slab)+len(key) > cap(sh.slab) {
		sh.slab = make([]byte, 0, max(slabChunk, len(key)))
	}
	off := len(sh.slab)
	sh.slab = append(sh.slab, key...)
	kc := sh.slab[off:len(sh.slab):len(sh.slab)]
	it.bytes.Add(int64(len(key)))

	// Assign the dense id and make it decodable before publishing the
	// slot, so any reader that observes the id can decode it.
	id := it.next.Add(1) - 1
	it.storeRef(id, kc)

	// Publish: plain stores of id/key, then the release store of meta.
	i := h & idx.mask
	for idx.slots[i].meta.Load() != 0 {
		i = (i + 1) & idx.mask
	}
	s := &idx.slots[i]
	s.id = id
	s.key = kc
	s.meta.Store(h<<1 | 1)
	sh.used++
	return id
}

// grow doubles the shard's index and republishes it. Called under the
// shard lock; readers keep probing the old (now frozen) index until they
// next load the pointer.
func (sh *shard) grow(old *shardIndex) *shardIndex {
	nn := &shardIndex{mask: uint64(len(old.slots))*2 - 1, slots: make([]slot, len(old.slots)*2)}
	for si := range old.slots {
		s := &old.slots[si]
		meta := s.meta.Load()
		if meta == 0 {
			continue
		}
		h := meta >> 1
		i := h & nn.mask
		for nn.slots[i].meta.Load() != 0 {
			i = (i + 1) & nn.mask
		}
		nn.slots[i].id = s.id
		nn.slots[i].key = s.key
		nn.slots[i].meta.Store(meta)
	}
	sh.idx.Store(nn)
	return nn
}

// storeRef records id → key in the decode directory, growing the paged
// directory as needed.
func (it *Interner) storeRef(id uint64, key []byte) {
	p := int(id >> pageBits)
	dir := it.dir.Load()
	if dir == nil || p >= len(*dir) || (*dir)[p] == nil {
		it.dirMu.Lock()
		dir = it.dir.Load()
		if dir == nil || p >= len(*dir) || (*dir)[p] == nil {
			var nd []*page
			if dir != nil {
				nd = make([]*page, max(p+1, len(*dir)))
				copy(nd, *dir)
			} else {
				nd = make([]*page, p+1)
			}
			if nd[p] == nil {
				nd[p] = new(page)
			}
			it.dir.Store(&nd)
			dir = &nd
		}
		it.dirMu.Unlock()
	}
	(*dir)[p][id&(pageSize-1)] = key
}

// KeyBytes returns the encoded bytes of an interned id. The returned slice
// aliases the dictionary's append-only storage; callers must not modify
// it. Unknown ids are a typed error, never a panic.
func (it *Interner) KeyBytes(id uint64) ([]byte, error) {
	if id >= it.next.Load() {
		return nil, fmt.Errorf("intern: id %d not interned (dictionary holds %d)", id, it.next.Load())
	}
	dir := it.dir.Load()
	p := int(id >> pageBits)
	if dir == nil || p >= len(*dir) || (*dir)[p] == nil {
		return nil, fmt.Errorf("intern: id %d has no decode entry", id)
	}
	key := (*dir)[p][id&(pageSize-1)]
	if key == nil {
		return nil, fmt.Errorf("intern: id %d has no decode entry", id)
	}
	return key, nil
}

// nullHash is the hash contribution of a NULL column value. Any constant
// works; identity is decided by byte comparison, the hash only routes.
const nullHash = 0x9e3779b97f4a7c15

// rowSeed starts every row-hash combine chain.
const rowSeed = 0x517cc1b727220a95

// combine folds one column-value hash into the row hash. Multiplication
// makes the fold order-sensitive, so (a, b) and (b, a) hash apart.
func combine(h, ch uint64) uint64 {
	return (h ^ ch) * 0xc6a4a7935bd1e995
}

// finish avalanches a combined row hash (the 64-bit murmur3 finalizer),
// spreading entropy into the top bits (shard selection) and the low bits
// (slot selection).
func finish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashValue is the single-key analogue of the batched per-column hashing:
// the column-value hash a Value contributes to its row hash.
func hashValue(v Value) uint64 {
	switch v.Kind {
	case NullValue:
		return nullHash
	case U64Value:
		return hashfn.Murmur2(v.U64)
	default:
		return hashfn.Murmur2String(v.Str)
	}
}

// HashKey computes the row hash of a key given as column values — the
// same function the batched encoder computes per row, so single-key and
// batched interning agree on shard and slot routing.
func HashKey(vals []Value) uint64 {
	h := uint64(rowSeed)
	for _, v := range vals {
		h = combine(h, hashValue(v))
	}
	return finish(h)
}
