package external

// Tests of the byte-budget machinery: config validation, hybrid resident
// partitions with largest-first eviction, governor-derived sizing, shared
// governors, and the float-finalized output columns.

import (
	"math"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/faultfs"
	"cacheagg/internal/memgov"
)

func TestValidateRejectsNegativeConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"rows", Config{MemoryBudgetRows: -1}},
		{"bytes", Config{MemoryBudgetBytes: -100}},
		{"spill", Config{MaxSpillBytes: -5}},
		{"retry", Config{Retry: faultfs.RetryPolicy{MaxAttempts: -2}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: negative value accepted", tc.name)
		}
		if _, err := Aggregate(tc.cfg, &core.Input{Keys: []uint64{1}}); err == nil {
			t.Errorf("%s: Aggregate accepted an invalid config", tc.name)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config must validate (defaults): %v", err)
	}
}

func TestHybridSmallInputStaysResident(t *testing.T) {
	// A generous byte budget and a small input: every partition fits in
	// memory, so nothing should ever touch the disk.
	in := mkInput(datagen.Uniform, 20000, 500, 11)
	cfg := Config{MemoryBudgetBytes: 256 << 20, TempDir: t.TempDir()}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	if res.Stats.SpilledRows != 0 {
		t.Fatalf("%d rows spilled despite a generous budget", res.Stats.SpilledRows)
	}
	if res.Stats.ResidentPartitions == 0 {
		t.Fatal("no partition reported resident")
	}
	if res.Stats.EvictedPartitions != 0 {
		t.Fatalf("%d partitions evicted despite a generous budget", res.Stats.EvictedPartitions)
	}
	if res.Stats.PeakReservedBytes == 0 {
		t.Fatal("no peak footprint recorded")
	}
}

func TestHybridTightBudgetEvictsAndCompletes(t *testing.T) {
	// Working set far above the budget: the hybrid must evict (largest
	// first), spill, possibly recurse — and still produce the exact
	// result. The peak footprint must respect the budget up to the
	// documented slack (one morsel of production per worker plus the
	// per-worker reservation-cache grain).
	in := mkInput(datagen.Uniform, 300000, 200000, 13)
	const budget = 8 << 20
	cfg := Config{MemoryBudgetBytes: budget, TempDir: t.TempDir()}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	if res.Stats.EvictedPartitions == 0 {
		t.Fatal("tight budget never forced an eviction")
	}
	if res.Stats.SpilledRows == 0 {
		t.Fatal("tight budget never spilled")
	}
	// Slack: per worker one morsel (16384 rows) of decomposed-width
	// intermediates (width 6 ⇒ 8+8·6+8 bytes/row) plus one cache grain.
	perWorker := int64(16384*(8+8*6+8) + memgov.DefaultCacheGrain)
	allowed := int64(budget) + perWorker*int64(maxWorkersForTest(cfg)) + (1 << 20)
	if res.Stats.PeakReservedBytes > allowed {
		t.Fatalf("peak %d exceeds budget %d plus slack %d",
			res.Stats.PeakReservedBytes, budget, allowed-budget)
	}
}

// maxWorkersForTest mirrors the sizing decision for assertions.
func maxWorkersForTest(cfg Config) int {
	c := cfg
	c.sizeFromBudget(6)
	return c.Core.Workers
}

func TestSharedGovernorSpansRuns(t *testing.T) {
	// A caller-provided governor is used as-is: its high-water mark
	// reflects the external run, and the ledger drains back to zero.
	gov := memgov.New(16 << 20)
	in := mkInput(datagen.Uniform, 50000, 20000, 17)
	cfg := Config{
		MemoryBudgetBytes: 16 << 20,
		Governor:          gov,
		TempDir:           t.TempDir(),
	}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, in)
	if gov.HighWater() == 0 {
		t.Fatal("shared governor saw no reservations")
	}
	if res.Stats.PeakReservedBytes != gov.HighWater() {
		t.Fatalf("stats peak %d != governor high water %d",
			res.Stats.PeakReservedBytes, gov.HighWater())
	}
	if got := gov.Reserved(); got != 0 {
		t.Fatalf("ledger not drained after the run: %d bytes still reserved", got)
	}
}

func TestAggsFloatExactAvg(t *testing.T) {
	// AVG finalized as float must be the exact sum/count, not the
	// truncated integer division.
	keys := []uint64{7, 7, 7, 9}
	vals := []int64{1, 2, 4, 5}
	in := &core.Input{
		Keys:    keys,
		AggCols: [][]int64{vals},
		Specs:   []agg.Spec{{Kind: agg.Avg, Col: 0}},
	}
	res, err := Aggregate(Config{MemoryBudgetRows: 2, TempDir: t.TempDir()}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != 2 {
		t.Fatalf("groups = %d", res.Groups())
	}
	for i, k := range res.Keys {
		want := 5.0
		if k == 7 {
			want = 7.0 / 3.0
		}
		if math.Abs(res.AggsFloat[0][i]-want) > 1e-12 {
			t.Fatalf("key %d: float avg %v, want %v", k, res.AggsFloat[0][i], want)
		}
	}
}

func TestChunkHalvingLadder(t *testing.T) {
	// Force the in-memory leaf over budget mid-stream: a budget that fits
	// the worker machinery plus a sliver, against chunks of all-distinct
	// rows. The ladder must shrink the chunk size and finish instead of
	// failing, recording the retries.
	n := 120000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	in := &core.Input{Keys: keys}
	cfg := Config{
		MemoryBudgetBytes: 2 << 20,
		MemoryBudgetRows:  1 << 20, // chunk "everything at once" on purpose
		TempDir:           t.TempDir(),
	}
	res, err := Aggregate(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups() != n {
		t.Fatalf("groups = %d, want %d", res.Groups(), n)
	}
	if res.Stats.ChunkRetries == 0 {
		t.Fatal("oversized chunk never triggered the halving ladder")
	}
}
