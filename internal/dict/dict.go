// Package dict provides dictionary encoding of composite and string
// grouping keys into dense 64-bit integers, the standard column-store
// technique that reduces any GROUP BY to the paper's setting (all columns
// are 64-bit integers, Section 6.1).
//
// It is now a thin single-threaded convenience wrapper over the concurrent
// interning layer (internal/intern), which replaced the original
// map[string]uint64 implementation and its per-row string([]byte) key
// allocation: encoding is batched and hash-amortized, and the id space is
// shared machinery with the general-key public API. Ids are dense in
// first-appearance order, as before — the friendliest possible input for
// the operator's hash-digit partitioning.
package dict

import (
	"fmt"

	"cacheagg/internal/intern"
)

// TupleDict encodes rows of a fixed-width tuple of uint64 key columns.
type TupleDict struct {
	width int
	it    *intern.Interner
	enc   *intern.Encoder
	vals  []intern.Value // decode scratch
}

// NewTupleDict creates a dictionary for tuples of the given column count.
func NewTupleDict(width int) *TupleDict {
	if width < 1 {
		panic("dict: tuple width must be at least 1")
	}
	it := intern.New()
	return &TupleDict{width: width, it: it, enc: it.NewEncoder()}
}

// Width returns the tuple width.
func (d *TupleDict) Width() int { return d.width }

// Len returns the number of distinct tuples seen.
func (d *TupleDict) Len() int { return d.it.Len() }

// EncodeColumns encodes all rows of the key columns into dense ids,
// appending new tuples to the dictionary. All columns must have equal
// length and there must be exactly Width of them.
func (d *TupleDict) EncodeColumns(cols [][]uint64) ([]uint64, error) {
	if len(cols) != d.width {
		return nil, fmt.Errorf("dict: %d key columns, want %d", len(cols), d.width)
	}
	n := len(cols[0])
	icols := make([]intern.Column, d.width)
	for c, col := range cols {
		if len(col) != n {
			return nil, fmt.Errorf("dict: key column %d has %d rows, want %d", c, len(col), n)
		}
		icols[c].U64 = col
	}
	ids := make([]uint64, n)
	if err := d.enc.EncodeColumns(icols, ids); err != nil {
		return nil, fmt.Errorf("dict: %w", err)
	}
	return ids, nil
}

// Decode returns the tuple of the given id as a freshly allocated slice.
// Unknown ids panic, as an out-of-range index into the original
// slice-backed dictionary did.
func (d *TupleDict) Decode(id uint64) []uint64 {
	b, err := d.it.KeyBytes(id)
	if err != nil {
		panic(err)
	}
	vals, err := intern.DecodeKey(b, d.vals[:0])
	d.vals = vals[:0]
	if err != nil || len(vals) != d.width {
		panic(fmt.Sprintf("dict: id %d does not decode to a width-%d tuple", id, d.width))
	}
	out := make([]uint64, d.width)
	for c, v := range vals {
		out[c] = v.U64
	}
	return out
}

// DecodeColumns fills out[c][i] with column c of the tuple ids[i], for every
// key column — the columnar decode used to materialize result key columns.
func (d *TupleDict) DecodeColumns(ids []uint64) [][]uint64 {
	types := make([]intern.ColType, d.width)
	cols, err := d.enc.DecodeColumns(ids, types)
	if err != nil {
		panic(err)
	}
	out := make([][]uint64, d.width)
	for c := range cols {
		out[c] = cols[c].U64
	}
	return out
}

// StringDict encodes string keys into dense ids.
type StringDict struct {
	it   *intern.Interner
	enc  *intern.Encoder
	one  [1]intern.Value
	vals []intern.Value
}

// NewStringDict creates an empty string dictionary.
func NewStringDict() *StringDict {
	it := intern.New()
	return &StringDict{it: it, enc: it.NewEncoder()}
}

// Len returns the number of distinct strings seen.
func (d *StringDict) Len() int { return d.it.Len() }

// Encode returns the id of s, assigning a new one on first appearance.
func (d *StringDict) Encode(s string) uint64 {
	d.one[0] = intern.Value{Kind: intern.StrValue, Str: s}
	return d.enc.InternRow(d.one[:])
}

// EncodeAll encodes a whole column.
func (d *StringDict) EncodeAll(vals []string) []uint64 {
	ids := make([]uint64, len(vals))
	if len(vals) == 0 {
		return ids
	}
	if err := d.enc.EncodeColumns([]intern.Column{{Str: vals}}, ids); err != nil {
		panic(err) // unreachable: one well-formed column
	}
	return ids
}

// Value returns the string of the given id. Unknown ids panic, as an
// out-of-range index into the original slice-backed dictionary did.
func (d *StringDict) Value(id uint64) string {
	b, err := d.it.KeyBytes(id)
	if err != nil {
		panic(err)
	}
	vals, err := intern.DecodeKey(b, d.vals[:0])
	d.vals = vals[:0]
	if err != nil || len(vals) != 1 || vals[0].Kind != intern.StrValue {
		panic(fmt.Sprintf("dict: id %d does not decode to a string", id))
	}
	return vals[0].Str
}

// Values decodes a whole id column.
func (d *StringDict) Values(ids []uint64) []string {
	cols, err := d.enc.DecodeColumns(ids, []intern.ColType{intern.StrCol})
	if err != nil {
		panic(err)
	}
	return cols[0].Str
}
