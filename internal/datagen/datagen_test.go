package datagen

import (
	"sort"
	"testing"
)

func TestAllDistributionsInBounds(t *testing.T) {
	for _, d := range Dists() {
		keys := Generate(Spec{Dist: d, N: 20000, K: 1000, Seed: 1})
		if len(keys) != 20000 {
			t.Fatalf("%v: wrong length", d)
		}
		for i, k := range keys {
			if k < 1 || k > 1000 {
				t.Fatalf("%v: key %d at %d out of [1, 1000]", d, k, i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, d := range Dists() {
		a := Generate(Spec{Dist: d, N: 5000, K: 500, Seed: 9})
		b := Generate(Spec{Dist: d, N: 5000, K: 500, Seed: 9})
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic at %d", d, i)
			}
		}
	}
}

func TestSeedsChangeRandomDists(t *testing.T) {
	for _, d := range []Dist{Uniform, HeavyHitter, MovingCluster, SelfSimilar, Zipf} {
		a := Generate(Spec{Dist: d, N: 1000, K: 500, Seed: 1})
		b := Generate(Spec{Dist: d, N: 1000, K: 500, Seed: 2})
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%v: identical output for different seeds", d)
		}
	}
}

func TestUniformCoversDomain(t *testing.T) {
	keys := Generate(Spec{Dist: Uniform, N: 100000, K: 100, Seed: 3})
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	if len(counts) != 100 {
		t.Fatalf("uniform hit %d of 100 keys", len(counts))
	}
	for k, c := range counts {
		if c < 500 || c > 2000 {
			t.Fatalf("key %d count %d far from expected 1000", k, c)
		}
	}
}

func TestSequentialCycles(t *testing.T) {
	keys := Generate(Spec{Dist: Sequential, N: 10, K: 3, Seed: 0})
	want := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("sequential[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestSortedIsSortedAndBalanced(t *testing.T) {
	keys := Generate(Spec{Dist: Sorted, N: 10000, K: 100, Seed: 0})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("sorted distribution is not sorted")
	}
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	if len(counts) != 100 {
		t.Fatalf("sorted hit %d of 100 keys", len(counts))
	}
	for k, c := range counts {
		if c != 100 {
			t.Fatalf("key %d has %d rows, want exactly 100", k, c)
		}
	}
}

func TestHeavyHitterHalfMass(t *testing.T) {
	keys := Generate(Spec{Dist: HeavyHitter, N: 100000, K: 1000, Seed: 4})
	ones := 0
	for _, k := range keys {
		if k == 1 {
			ones++
		}
	}
	if ones < 48000 || ones > 52000 {
		t.Fatalf("heavy hitter has %d/100000 rows on key 1, want ~50000", ones)
	}
}

func TestHeavyHitterCustomFraction(t *testing.T) {
	keys := Generate(Spec{Dist: HeavyHitter, N: 100000, K: 1000, Seed: 4, HitFraction: 0.9})
	ones := 0
	for _, k := range keys {
		if k == 1 {
			ones++
		}
	}
	if ones < 88000 || ones > 92000 {
		t.Fatalf("hit fraction 0.9 gave %d/100000", ones)
	}
}

func TestMovingClusterWindow(t *testing.T) {
	const n = 100000
	const k = 50000
	const w = 1024
	keys := Generate(Spec{Dist: MovingCluster, N: n, K: k, Seed: 5})
	for i, key := range keys {
		lo := uint64(float64(k-w) * float64(i) / float64(n-1))
		if key < 1+lo || key >= 1+lo+w {
			t.Fatalf("row %d: key %d outside window [%d, %d)", i, key, 1+lo, 1+lo+w)
		}
	}
	// Early rows never see late keys: locality.
	for _, key := range keys[:1000] {
		if key > 3*w {
			t.Fatalf("early row has far key %d", key)
		}
	}
}

func TestSelfSimilar8020(t *testing.T) {
	const n = 200000
	const k = 10000
	keys := Generate(Spec{Dist: SelfSimilar, N: n, K: k, Seed: 6})
	inTop := 0
	for _, key := range keys {
		if key <= k/5 { // first 20% of the key domain
			inTop++
		}
	}
	frac := float64(inTop) / float64(n)
	if frac < 0.76 || frac > 0.84 {
		t.Fatalf("first 20%% of keys got %.3f of mass, want ~0.80", frac)
	}
}

func TestZipfSkewShape(t *testing.T) {
	const n = 200000
	const k = 1000
	keys := Generate(Spec{Dist: Zipf, N: n, K: k, Seed: 7})
	counts := make([]int, k+1)
	for _, key := range keys {
		counts[key]++
	}
	// With theta = 0.5, P(1)/P(k) = sqrt(k) ≈ 31.6.
	if counts[1] < counts[k]*5 {
		t.Fatalf("zipf not skewed: count(1)=%d count(%d)=%d", counts[1], k, counts[k])
	}
	// Expected frequency of key 1: 1 / (sum_{i=1}^{k} i^-0.5) ≈ 1/61.8.
	expect := float64(n) / 61.8
	if float64(counts[1]) < expect*0.7 || float64(counts[1]) > expect*1.3 {
		t.Fatalf("zipf count(1) = %d, expected ≈ %.0f", counts[1], expect)
	}
	// Monotone non-increasing in aggregate: compare decade sums.
	first := 0
	last := 0
	for i := 1; i <= 100; i++ {
		first += counts[i]
	}
	for i := k - 99; i <= k; i++ {
		last += counts[i]
	}
	if first <= last {
		t.Fatalf("zipf head (%d) should outweigh tail (%d)", first, last)
	}
}

func TestZipfThetaLarger(t *testing.T) {
	// Higher exponent → more skew on key 1.
	n := 100000
	c := func(theta float64) int {
		keys := Generate(Spec{Dist: Zipf, N: n, K: 1000, Seed: 8, Theta: theta})
		ones := 0
		for _, k := range keys {
			if k == 1 {
				ones++
			}
		}
		return ones
	}
	if c(1.2) <= c(0.5) {
		t.Fatal("theta=1.2 should concentrate more mass on key 1 than theta=0.5")
	}
}

func TestKOne(t *testing.T) {
	for _, d := range Dists() {
		keys := Generate(Spec{Dist: d, N: 100, K: 1, Seed: 1})
		for _, k := range keys {
			if k != 1 {
				t.Fatalf("%v with K=1 produced key %d", d, k)
			}
		}
	}
}

func TestCountDistinct(t *testing.T) {
	if CountDistinct([]uint64{}) != 0 {
		t.Fatal("empty")
	}
	if CountDistinct([]uint64{5, 5, 5}) != 1 {
		t.Fatal("single")
	}
	if CountDistinct([]uint64{1, 2, 3, 2, 1}) != 3 {
		t.Fatal("three")
	}
}

func TestParseDistRoundTrip(t *testing.T) {
	for _, d := range Dists() {
		got, err := ParseDist(d.String())
		if err != nil || got != d {
			t.Fatalf("round trip failed for %v: %v %v", d, got, err)
		}
	}
	if _, err := ParseDist("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	for i, s := range []Spec{
		{Dist: Uniform, N: -1, K: 5},
		{Dist: Uniform, N: 5, K: 0},
		{Dist: Dist(99), N: 5, K: 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Generate(s)
		}()
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Dist: Uniform, N: 10, K: 5, Seed: 3}
	if s.String() != "uniform(N=10, K=5, seed=3)" {
		t.Fatalf("got %q", s.String())
	}
}

func TestFillMatchesGenerate(t *testing.T) {
	s := Spec{Dist: Uniform, N: 1000, K: 100, Seed: 11}
	a := Generate(s)
	b := make([]uint64, 1000)
	Fill(b, s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Fill and Generate disagree")
		}
	}
}

func BenchmarkUniform(b *testing.B) {
	keys := make([]uint64, 1<<16)
	b.SetBytes(int64(len(keys) * 8))
	for i := 0; i < b.N; i++ {
		Fill(keys, Spec{Dist: Uniform, N: len(keys), K: 1 << 20, Seed: uint64(i)})
	}
}

func BenchmarkZipf(b *testing.B) {
	keys := make([]uint64, 1<<16)
	b.SetBytes(int64(len(keys) * 8))
	for i := 0; i < b.N; i++ {
		Fill(keys, Spec{Dist: Zipf, N: len(keys), K: 1 << 20, Seed: uint64(i)})
	}
}
