package core

import (
	"fmt"
	"math"

	"cacheagg/internal/global"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/runs"
	"cacheagg/internal/trace"
)

// Routine identifies one of the three execution routines the operator can
// run a query with. The paper's ADAPTIVE chooses between two (hashing with
// spill vs sort-based partitioning) inside the partitioned executor;
// "Global Hash Tables Strike Back!" (arXiv:2505.04153) adds the third: on
// many cores with a high reduction factor, one shared concurrent table
// beats partition-everything. The selector below is three-way and
// measured, not hardcoded — the hash-vs-sort study (arXiv:2411.13245)
// shows the crossover is workload-dependent.
type Routine uint8

const (
	// RoutineAuto lets the selector choose from the plan's K̂/α̂ sketch
	// estimates (partitioned when there is no trustworthy plan). Auto is
	// the only mode with mid-run demotion: a run started on the global
	// table falls back to partitioned when the observed α undershoots.
	RoutineAuto Routine = iota
	// RoutinePartitioned forces the paper's per-worker block tables +
	// radix-256 recursion (the executor of PRs 1-8).
	RoutinePartitioned
	// RoutineGlobal forces the lock-free shared table for intake. A forced
	// global run never demotes — tests use this to keep the table under
	// maximum contention.
	RoutineGlobal
	// RoutineSortSpill forces the sort-based external path: core refuses
	// the run with ErrMemoryBudget and the cacheagg layer degrades to the
	// spilling out-of-core operator. Auto selects it when the plan proves
	// the output alone cannot fit the memory budget, saving the doomed
	// in-memory pass.
	RoutineSortSpill

	numRoutines = 4
)

var routineNames = [numRoutines]string{"auto", "partitioned", "global", "sort-spill"}

func (r Routine) String() string {
	if int(r) < len(routineNames) {
		return routineNames[r]
	}
	return fmt.Sprintf("routine(%d)", uint8(r))
}

const (
	// globalAlphaMin is the predicted-α gate for auto-selecting the shared
	// table: well above the ADAPTIVE α₀=11 switch point, because the
	// shared table's win requires rows to overwhelmingly hit existing
	// groups (claims are contended, folds are cheap).
	globalAlphaMin = 32.0
	// globalMinWorkers gates auto-selection on parallelism: below it the
	// per-worker tables see no redundant re-aggregation worth removing.
	globalMinWorkers = 4
	// globalMaxBytes caps the auto-sized shared table (ungoverned runs).
	globalMaxBytes = 1 << 28
	// demoteMinRows is the minimum number of rows absorbed by the shared
	// table before the live-α demotion check may trigger: earlier the
	// estimate is noise.
	demoteMinRows = 1 << 15
)

// planTrusted reports whether the (possibly injected, possibly corrupt)
// plan's K̂ estimate is usable for routine selection: a real sample, a
// finite positive estimate, and the HLL drift guard satisfied. Corrupt
// plans fail this and fall back to the partitioned routine — the selector
// sanitizes, it never propagates garbage into a sizing decision.
func planTrusted(p *Plan) bool {
	if p == nil || p.SampleRows <= 0 {
		return false
	}
	if !(p.EstimatedK > 0) || math.IsInf(p.EstimatedK, 0) {
		return false
	}
	if !(p.HalfSampleK > 0) || p.EstimatedK/p.HalfSampleK > planDriftLimit {
		return false
	}
	return true
}

// effectiveK clamps the plan's distinct-count estimate to the physical
// bound (a run cannot have more groups than rows).
func effectiveK(p *Plan, rows int) float64 {
	k := p.EstimatedK
	if k > float64(rows) {
		k = float64(rows)
	}
	if k < 1 {
		k = 1
	}
	return k
}

// predictedAlpha returns the plan's α̂ sanitized to a finite non-negative
// value (0 when the plan carries garbage).
func predictedAlpha(p *Plan) float64 {
	if p == nil {
		return 0
	}
	a := p.PredictedAlpha
	if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
		return 0
	}
	return a
}

// selectRoutine picks the execution routine for this run and the α that
// drove the decision (predicted for auto picks, 0 when no plan informed
// it). Called once from newExec, after plan attachment.
func (e *exec) selectRoutine() (Routine, float64) {
	// An out-of-range override (a corrupt or future value) is treated as
	// auto rather than trusted blindly.
	if r := e.cfg.Routine; r > RoutineAuto && r < numRoutines {
		return r, predictedAlpha(e.plan)
	}
	p := e.plan
	if !planTrusted(p) {
		return RoutinePartitioned, 0
	}
	kHat := effectiveK(p, len(e.in.Keys))
	alphaHat := predictedAlpha(p)

	// Sort-spill: the finalized output alone is ≥ K̂·chunkRow bytes, every
	// one of them reserved before assembly. If that provably exceeds the
	// whole budget the in-memory pass is doomed — fail fast with the same
	// typed error the mid-run abort produces, so the caller's degradation
	// path (cacheagg → external sort-spill) engages without first burning
	// a full pass of work.
	if e.gov != nil {
		if budget := e.gov.Budget(); budget > 0 && kHat*float64(e.chunkRow) > float64(budget) {
			return RoutineSortSpill, alphaHat
		}
	}

	// Global table: many workers, high predicted reduction, and a table
	// that plausibly fits. StartPartition (the planner's low-α signal)
	// excludes it by construction: alphaHat < α₀ < globalAlphaMin.
	if e.pool.Workers() >= globalMinWorkers && alphaHat >= globalAlphaMin {
		need := int64(float64(global.SlotBytes(e.words)) * 4 * kHat)
		limit := int64(globalMaxBytes)
		if e.gov != nil && e.gov.Budget() > 0 && e.gov.Budget() < limit {
			limit = e.gov.Budget()
		}
		if need <= limit {
			return RoutineGlobal, alphaHat
		}
	}
	return RoutinePartitioned, alphaHat
}

// setupGlobal sizes and installs the shared table for a global-routine run.
// Sizing: 4·K̂ slots when a trusted plan provides K̂ (25 % fill at the
// predicted group count), otherwise one cache-sized table per worker —
// growth covers underestimates. If the governor refuses the reservation the
// routine falls back to partitioned instead of failing: the shared table is
// an optimization, never a requirement.
func (e *exec) setupGlobal() bool {
	capRows := e.cacheRows * e.pool.Workers()
	if planTrusted(e.plan) {
		capRows = int(4 * effectiveK(e.plan, len(e.in.Keys)))
	}
	if maxRows := int(int64(globalMaxBytes) / global.SlotBytes(e.words)); capRows > maxRows {
		capRows = maxRows
	}
	if capRows < global.MinRows {
		capRows = global.MinRows
	}
	maxCap := int(int64(globalMaxBytes) / global.SlotBytes(e.words))
	g := global.New(global.Config{
		CapacityRows:    capRows,
		MaxCapacityRows: maxCap,
		MaxFill:         e.cfg.MaxFill,
		Ops:             e.wordOps,
		Governor:        e.gov,
	})
	if e.gov != nil && !e.gov.TryReserve(g.FootprintBytes()) {
		return false
	}
	e.glob = g
	return true
}

// maybeDemote runs the live-α demotion check after a global-intake morsel.
// Only auto-selected global runs demote (forced runs stay put so tests can
// hold the table under contention); the first worker to observe the
// undershoot flips the shared flag and every worker's next morsel takes the
// partitioned path. The table's absorbed rows are NOT discarded — they are
// drained into the root buckets after intake like any other run fragment.
func (e *exec) maybeDemote(ws *workerState) {
	if e.routineForced || e.demoted.Load() {
		return
	}
	if e.glob.RowsIn() < demoteMinRows {
		return
	}
	alpha := e.glob.Alpha()
	if alpha >= DefaultAlpha0 {
		return
	}
	if e.demoted.CompareAndSwap(false, true) {
		ws.stats.demotions++
		if e.tr != nil {
			e.tr.Emit(trace.KindRoutineSelect, ws.id, 0, int64(RoutinePartitioned), alpha)
		}
	}
}

// usingGlobal reports whether this worker's next morsel should take the
// shared-table intake path.
func (e *exec) usingGlobal() bool {
	return e.glob != nil && !e.demoted.Load()
}

// globalIntakeMorsel feeds morsel rows [lo, hi) through the shared table:
// hash a block, fold it into the global table, and dispatch the escaped
// remainder (contention, full blocks, refused growth) through the worker's
// private table/scatter machinery. With a hot-key plan the block is
// bypass-compacted first, exactly like the partitioned path.
func (e *exec) globalIntakeMorsel(ws *workerState, st StrategyState,
	keys []uint64, cols [][]int64, lo, hi int, local *[hashfn.Fanout]runs.Bucket) {
	for blkLo := lo; blkLo < hi; blkLo += scratchRows {
		blkHi := min(blkLo+scratchRows, hi)
		bk, bc, base, n := keys, cols, blkLo, blkHi-blkLo
		if e.hot != nil {
			n = e.compactCold(ws, keys, cols, blkLo, blkHi)
			bk, bc, base = ws.coldKeys, ws.coldCols, 0
		}
		if n == 0 {
			continue
		}
		t0 := e.stamp()
		hs := ws.hashScratch[:n]
		hashfn.HashBatch(bk[base:base+n], hs)
		esc, contended := e.glob.InsertBatch(hs, bk[base:base+n], bc, base, ws.escIdx[:0])
		ws.escIdx = esc[:0]
		absorbed := n - len(esc)
		ws.stats.globalRows += int64(absorbed)
		ws.stats.globalContended += int64(contended)
		e.lap(t0, trace.PhaseTableBuild)
		if len(esc) == 0 {
			continue
		}
		// Gather the escaped rows (keys + referenced aggregate columns)
		// and run them through the normal decision loop: the escape hatch
		// is the per-worker table, so contention can degrade throughput
		// but never correctness or progress.
		ws.stats.globalEscaped += int64(len(esc))
		if e.tr != nil {
			e.tr.Emit(trace.KindGlobalContention, ws.id, 0, int64(len(esc)), float64(contended))
		}
		for x, ei := range esc {
			ws.escKeys[x] = bk[base+int(ei)]
		}
		for _, c := range e.refCols {
			dst := ws.escCols[c]
			src := bc[c]
			for x, ei := range esc {
				dst[x] = src[base+int(ei)]
			}
		}
		e.dispatchRaw(ws, st, ws.table, ws.scat, ws.escKeys, ws.escCols, 0, len(esc), local)
	}
}

// drainGlobal publishes the shared table's contents into the root buckets
// as one aggregated run per radix-256 digit. Called between intake and
// recursion, after the pool has joined — single-threaded, so no locking.
func (e *exec) drainGlobal() {
	if e.glob == nil {
		return
	}
	t0 := e.stamp()
	drained := e.glob.DrainRuns(e.cfg.CarryHashes)
	ws0 := &e.workers[0]
	total := 0
	for d := range drained {
		if r := drained[d]; r != nil && r.Len() > 0 {
			e.root[d].Add(r)
			total += r.Len()
		}
	}
	ws0.mem.Reserve(int64(total) * e.interRow)
	e.lap(t0, trace.PhaseSplit)
}
