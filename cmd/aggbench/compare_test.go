package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareNoBaselinePoint pins the unmatched-point behavior: a current
// point with no baseline partner — even after the P=* worker-count
// fallback — must appear in the table with an explicit "no baseline point"
// note, never be silently skipped, and never fail the comparison.
func TestCompareNoBaselinePoint(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
		{"name": "distinct/adaptive/K=2^8", "ns_per_op": 100, "rows_per_sec": 1, "allocs_per_op": 2}
	]`)
	cur := writeJSON(t, dir, "cur.json", `[
		{"name": "distinct/adaptive/K=2^8", "ns_per_op": 110, "rows_per_sec": 1, "allocs_per_op": 2},
		{"name": "global/uniform/K=2^8/P=4/routine=global", "ns_per_op": 50, "rows_per_sec": 1, "allocs_per_op": 2}
	]`)

	var sb strings.Builder
	writeCompare(&sb, "t", base, cur, 10)
	got := sb.String()

	if !strings.Contains(got, "no baseline point") {
		t.Fatalf("unmatched point not flagged:\n%s", got)
	}
	if !strings.Contains(got, "global/uniform/K=2^8/P=4/routine=global") {
		t.Fatalf("unmatched point row missing entirely:\n%s", got)
	}
	if !strings.Contains(got, "1 points compared, 1 without a baseline partner") {
		t.Fatalf("summary line wrong:\n%s", got)
	}
}

// TestCompareWorkerFallback pins the P=* pairing: a baseline recorded at a
// different worker count still partners with the fresh point.
func TestCompareWorkerFallback(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
		{"name": "external/seq/P=8/K=2^10", "ns_per_op": 100, "rows_per_sec": 1, "allocs_per_op": 2}
	]`)
	cur := writeJSON(t, dir, "cur.json", `[
		{"name": "external/seq/P=4/K=2^10", "ns_per_op": 105, "rows_per_sec": 1, "allocs_per_op": 2}
	]`)

	var sb strings.Builder
	writeCompare(&sb, "t", base, cur, 10)
	got := sb.String()

	if strings.Contains(got, "no baseline point") {
		t.Fatalf("P=* fallback did not pair the point:\n%s", got)
	}
	if !strings.Contains(got, "within noise") {
		t.Fatalf("paired point not annotated:\n%s", got)
	}
	if !strings.Contains(got, "1 points compared, 0 without a baseline partner") {
		t.Fatalf("summary line wrong:\n%s", got)
	}
}

// TestReadRecordsBothFormats pins that readRecords accepts the legacy bare
// record list (phase ≤ 8 baselines) and the phase-9 object form with a
// meta block, and rejects garbage with an error instead of a panic.
func TestReadRecordsBothFormats(t *testing.T) {
	dir := t.TempDir()

	bare := writeJSON(t, dir, "bare.json", `[
		{"name": "a", "ns_per_op": 1, "rows_per_sec": 1, "allocs_per_op": 0}
	]`)
	recs, err := readRecords(bare)
	if err != nil || len(recs) != 1 || recs[0].Name != "a" {
		t.Fatalf("bare list: recs=%v err=%v", recs, err)
	}

	obj := writeJSON(t, dir, "obj.json", `{
		"meta": {"go_version": "go1.x", "goos": "linux", "goarch": "amd64",
		         "gomaxprocs": 4, "host_profile": false},
		"records": [
			{"name": "b", "ns_per_op": 2, "rows_per_sec": 1, "allocs_per_op": 0}
		]
	}`)
	recs, err = readRecords(obj)
	if err != nil || len(recs) != 1 || recs[0].Name != "b" {
		t.Fatalf("object form: recs=%v err=%v", recs, err)
	}

	for name, body := range map[string]string{
		"garbage.json": `not json`,
		"empty.json":   `[]`,
		"norecs.json":  `{"meta": {}, "records": []}`,
	} {
		if _, err := readRecords(writeJSON(t, dir, name, body)); err == nil {
			t.Fatalf("%s: want error, got nil", name)
		}
	}
	if _, err := readRecords(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error, got nil")
	}
	if _, err := readRecords(""); err == nil {
		t.Fatal("empty path: want error, got nil")
	}
}
