package main

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"cacheagg/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		name   string
		passes int
		want   string
	}{
		{"adaptive", 1, "Adaptive(α₀=11, c=10)"},
		{"hashing-only", 1, "HashingOnly"},
		{"partition-always", 2, "PartitionAlways(2)"},
		{"partition-only", 1, "PartitionOnly"},
	}
	for _, c := range cases {
		s, err := parseStrategy(c.name, c.passes)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if s.Name() != c.want {
			t.Fatalf("%s: got %q, want %q", c.name, s.Name(), c.want)
		}
	}
	if _, err := parseStrategy("nope", 1); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestReadKeysText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.txt")
	if err := os.WriteFile(path, []byte("5\n7\n5\n18446744073709551615\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := readKeys(path, "text")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 7, 5, ^uint64(0)}
	if len(keys) != len(want) {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
}

func TestReadKeysBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	want := []uint64{1, 2, 3, 1 << 60}
	buf := make([]byte, 8*len(want))
	for i, k := range want {
		binary.LittleEndian.PutUint64(buf[i*8:], k)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := readKeys(path, "binary")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
}

func TestReadKeysErrors(t *testing.T) {
	if _, err := readKeys("/nonexistent/file", "text"); err == nil {
		t.Fatal("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("not-a-number\n"), 0o644)
	if _, err := readKeys(bad, "text"); err == nil {
		t.Fatal("garbage text should error")
	}
	if _, err := readKeys(bad, "weird"); err == nil {
		t.Fatal("unknown format should error")
	}
	// Truncated binary file.
	trunc := filepath.Join(dir, "trunc.bin")
	os.WriteFile(trunc, []byte{1, 2, 3}, 0o644)
	if _, err := readKeys(trunc, "binary"); err == nil {
		t.Fatal("truncated binary should error")
	}
}

func TestVerifyDistinct(t *testing.T) {
	keys := []uint64{3, 3, 9, 1}
	res := &core.Result{Keys: []uint64{3, 9, 1}}
	if err := verifyDistinct(keys, res); err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	if err := verifyDistinct(keys, &core.Result{Keys: []uint64{3, 9}}); err == nil {
		t.Fatal("missing group should fail")
	}
	// Duplicate.
	if err := verifyDistinct(keys, &core.Result{Keys: []uint64{3, 3, 9}}); err == nil {
		t.Fatal("duplicate group should fail")
	}
	// Phantom.
	if err := verifyDistinct(keys, &core.Result{Keys: []uint64{3, 9, 5}}); err == nil {
		t.Fatal("phantom group should fail")
	}
}
