// Package emm implements the external-memory-model cost analysis of paper
// Section 2 (Figure 1): closed-form cache-line-transfer counts for the four
// textbook aggregation algorithms, as functions of
//
//	N — input rows,
//	K — number of groups (output rows),
//	M — fast-memory (cache) capacity in rows, and
//	B — rows per cache line.
//
// The model charges one transfer per cache line moved between fast and slow
// memory. A full pass over the data therefore costs N/B reads, and a pass
// that also materializes its output costs another N/B writes.
package emm

import "math"

// Params bundles the machine model. The paper's running example (Figure 1)
// is N = 2³², M = 2¹⁶, B = 16 — "typical values for modern CPU caches".
type Params struct {
	N int64 // input rows
	M int64 // cache capacity in rows
	B int64 // rows per cache line
}

// FigureParams are the exact parameters of the paper's Figure 1.
func FigureParams() Params { return Params{N: 1 << 32, M: 1 << 16, B: 16} }

// Valid reports whether the parameters describe a sensible machine:
// at least one line of cache and lines of at least one row.
func (p Params) Valid() bool {
	return p.N > 0 && p.B > 0 && p.M >= p.B
}

// fanout is the partitioning fan-out of one bucket-sort pass: M/B output
// buffers of one line each fit in cache.
func (p Params) fanout() int64 { return p.M / p.B }

// passesToLeaves returns ⌈log_fanout(leaves)⌉ — the number of partitioning
// passes needed until the call tree has the given number of leaves — as a
// non-negative integer computed without floating point (repeated
// multiplication), so the staircase of Figure 1 is exact.
func (p Params) passesToLeaves(leaves int64) int64 {
	if leaves <= 1 {
		return 0
	}
	f := p.fanout()
	if f < 2 {
		// Degenerate cache (one line): every pass halves nothing; model
		// breaks down. Return +inf-ish sentinel.
		return math.MaxInt32
	}
	passes := int64(0)
	reach := int64(1)
	for reach < leaves {
		// Guard overflow: once reach*f would overflow it certainly
		// exceeds leaves.
		if reach > leaves/f+1 {
			return passes + 1
		}
		reach *= f
		passes++
	}
	return passes
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// SortAggStatic is the first-iteration analysis of SORTAGGREGATION
// (Section 2.1): bucket sort with a static recursion depth of
// ⌈log_{M/B}(N/M)⌉ followed by a separate aggregation pass.
//
//	2·(N/B)·⌈log_{M/B}(N/M)⌉ + N/B + K/B
func SortAggStatic(p Params, K int64) int64 {
	leaves := ceilDiv(p.N, p.M)
	passes := p.passesToLeaves(leaves)
	return 2*ceilDiv(p.N, p.B)*passes + ceilDiv(p.N, p.B) + ceilDiv(K, p.B)
}

// SortAgg is the multiset-aware analysis: the recursion stops once every
// partition holds a single group, so the call tree has min(N/M, K) leaves.
//
//	2·(N/B)·⌈log_{M/B}(min(N/M, K))⌉ + N/B + K/B
//
// This matches the lower bound for multiset sorting (Matias et al.),
// so no aggregation-by-sorting algorithm can do asymptotically better.
func SortAgg(p Params, K int64) int64 {
	leaves := minI(ceilDiv(p.N, p.M), K)
	passes := p.passesToLeaves(leaves)
	return 2*ceilDiv(p.N, p.B)*passes + ceilDiv(p.N, p.B) + ceilDiv(K, p.B)
}

// SortAggOpt is SORTAGGREGATION-OPTIMIZED (Section 2.1, third iteration):
// the last bucket-sort pass is merged with the aggregation pass, which
// eliminates one full pass and lets the final pass keep M groups (a factor
// B more partitions) — the call tree then has only K/M leaves:
//
//	N/B + 2·(N/B)·passes + K/B   with passes = ⌈log_{M/B}(K/M)⌉
//
// For K ≤ M this degenerates to a single read of the input plus writing
// the output: the whole result is computed in cache.
func SortAggOpt(p Params, K int64) int64 {
	leaves := ceilDiv(K, p.M)
	passes := p.passesToLeaves(leaves)
	return ceilDiv(p.N, p.B) + 2*ceilDiv(p.N, p.B)*passes + ceilDiv(K, p.B)
}

// HashAgg is naive HASHAGGREGATION (Section 2.2): one pass building a hash
// table of K entries in place. While the table fits in cache (K ≤ M) the
// cost is reading the input and writing the output. Beyond that, only a
// fraction M/K of the groups is cache resident, so a 1−M/K fraction of the
// input rows each incur a full cache miss: one line written back and one
// line read (2 transfers per row — not per line, which is why the curve
// explodes by a factor of ~2B in Figure 1).
func HashAgg(p Params, K int64) int64 {
	base := ceilDiv(p.N, p.B) + ceilDiv(K, p.B)
	if K <= p.M {
		return base
	}
	missFrac := 1 - float64(p.M)/float64(K)
	return base + int64(2*float64(p.N)*missFrac)
}

// HashAggOpt is HASHAGGREGATION-OPTIMIZED (Section 2.2): recursive
// partitioning by hash value until each partition's groups fit in cache,
// then in-cache hashing. The analysis "works the same way as the one for
// SortAggregationOptimized" and yields the identical formula — this
// equality is the paper's headline claim that hashing is sorting.
func HashAggOpt(p Params, K int64) int64 {
	return SortAggOpt(p, K)
}

// Row is one row of the Figure 1 table.
type Row struct {
	K             int64
	SortAggStatic int64
	SortAgg       int64
	SortAggOpt    int64
	HashAgg       int64
	HashAggOpt    int64
}

// Figure1 evaluates all model curves for K = 2^0 … 2^log2N, one row per
// power of two, reproducing the data behind the paper's Figure 1.
func Figure1(p Params) []Row {
	var out []Row
	for K := int64(1); K <= p.N; K *= 2 {
		out = append(out, Row{
			K:             K,
			SortAggStatic: SortAggStatic(p, K),
			SortAgg:       SortAgg(p, K),
			SortAggOpt:    SortAggOpt(p, K),
			HashAgg:       HashAgg(p, K),
			HashAggOpt:    HashAggOpt(p, K),
		})
	}
	return out
}
