package cachesim

import (
	"sort"

	"cacheagg/internal/hashfn"
	"cacheagg/internal/xrand"
)

// This file contains instrumented implementations of the four textbook
// algorithms of paper Section 2. Every data access goes through the
// simulated cache; the transfer counts they produce validate the emm model
// curves empirically (same shapes, reduced scale).
//
// Representation: the input is an array of keys (one word per row — the
// model's "row"); the output is an array of (key, count) pairs, i.e. the
// aggregation query is SELECT key, COUNT(*) GROUP BY key. Partial
// aggregates are (key, count) pairs as well, so all algorithms produce
// identical results.

// Stats captures the simulated cost of one algorithm execution.
type Stats struct {
	Groups    int64 // distinct keys found
	Transfers int64 // cache line transfers (misses + writebacks)
	Hits      int64
	Misses    int64
	Out       Array // the (key, count) result pairs, for verification
}

func captureStats(m *Machine, groups int64, out Array) Stats {
	m.Cache.Flush()
	return Stats{
		Groups:    groups,
		Transfers: m.Cache.Transfers(),
		Hits:      m.Cache.Hits(),
		Misses:    m.Cache.Misses(),
		Out:       out,
	}
}

// UniformKeys fills a new array with n keys drawn uniformly from [0, k),
// without charging the cache (dataset setup is outside the model).
func UniformKeys(m *Machine, n int, k uint64, seed uint64) Array {
	a := m.NewArray(n)
	rng := xrand.NewXoshiro256(seed)
	for i := 0; i < n; i++ {
		a.Poke(i, rng.Uint64n(k))
	}
	return a
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// distinctOf counts distinct keys of a slice of simulated memory without
// charging the cache (used to size tables the way the model assumes:
// "even with a perfect cache", the model knows K).
func distinctOf(a Array, lo, hi int) int {
	seen := make(map[uint64]struct{}, hi-lo)
	for i := lo; i < hi; i++ {
		seen[a.Peek(i)] = struct{}{}
	}
	return len(seen)
}

// hashInto aggregates rows [lo, hi) of input into a (key+1, count) open
// addressing table of the given slot count allocated in simulated memory,
// then appends (key, count) pairs to out starting at outPos. It returns the
// new outPos. Collisions probe linearly over the whole table (the textbook
// algorithm — not the blocked table of the real operator).
func hashInto(m *Machine, input Array, lo, hi int, slots int, out Array, outPos int) int {
	table := m.NewArray(slots * 2)
	mask := slots - 1
	for i := lo; i < hi; i++ {
		k := input.Read(i)
		s := int(hashfn.Murmur2(k)) & mask
		for {
			stored := table.Read(2 * s)
			if stored == 0 {
				table.Write(2*s, k+1)
				table.Write(2*s+1, 1)
				break
			}
			if stored == k+1 {
				table.Write(2*s+1, table.Read(2*s+1)+1)
				break
			}
			s = (s + 1) & mask
		}
	}
	for s := 0; s < slots; s++ {
		if stored := table.Read(2 * s); stored != 0 {
			out.Write(2*outPos, stored-1)
			out.Write(2*outPos+1, table.Read(2*s+1))
			outPos++
		}
	}
	return outPos
}

// HashAggNaive is naive HASHAGGREGATION: a single hash table sized for all
// K groups, built in one pass. When the table exceeds the cache, nearly
// every row misses.
func HashAggNaive(m *Machine, input Array) Stats {
	k := distinctOf(input, 0, input.Len())
	slots := nextPow2(2 * k)
	if slots < 16 {
		slots = 16
	}
	out := m.NewArray(2 * k)
	groups := hashInto(m, input, 0, input.Len(), slots, out, 0)
	return captureStats(m, int64(groups), out)
}

// digitFunc extracts the partitioning digit of a key for a recursion level.
type digitFunc func(key uint64, level int) int

// partitionRec recursively partitions rows [lo, hi) of input by digit until
// the partition's groups fit an in-cache table, then aggregates it in cache
// and appends results to out. It returns the new output position.
//
// Partitions are over-allocated to the parent's size (the Wassenberg trick;
// in simulated memory untouched words cost nothing), so no counting pass is
// needed — matching the paper's tuned routine.
func partitionRec(m *Machine, input Array, lo, hi int, level int, fanout int,
	tableBudgetWords int, digit digitFunc, out Array, outPos int) int {
	n := hi - lo
	if n == 0 {
		return outPos
	}
	k := distinctOf(input, lo, hi)
	slots := nextPow2(2 * k)
	if slots < 16 {
		slots = 16
	}
	if 2*slots <= tableBudgetWords || level >= hashfn.MaxLevels {
		// Leaf: aggregate in cache (fused final pass: read partition,
		// write only the aggregates).
		return hashInto(m, input, lo, hi, slots, out, outPos)
	}
	// Partition pass: scatter into fanout over-allocated children.
	parts := make([]Array, fanout)
	fill := make([]int, fanout)
	for p := range parts {
		parts[p] = m.NewArray(n)
	}
	for i := lo; i < hi; i++ {
		key := input.Read(i)
		p := digit(key, level)
		parts[p].Write(fill[p], key)
		fill[p]++
	}
	for p := 0; p < fanout; p++ {
		outPos = partitionRec(m, parts[p], 0, fill[p], level+1, fanout,
			tableBudgetWords, digit, out, outPos)
	}
	return outPos
}

// simFanout picks the partitioning fan-out for the machine: at most half
// the cache lines so that every partition's current output line plus the
// input stream stay resident (the model's M/B buffer argument).
func simFanout(m *Machine) int {
	f := m.Cache.CapacityLines() / 2
	if f > hashfn.Fanout {
		f = hashfn.Fanout
	}
	if f < 2 {
		f = 2
	}
	// Round down to a power of two so digit extraction is a mask.
	return 1 << (bitsLen(uint(f)) - 1)
}

func bitsLen(x uint) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

func hashDigit(fanout int) digitFunc {
	bits := bitsLen(uint(fanout)) - 1
	return func(key uint64, level int) int {
		h := hashfn.Murmur2(key)
		shift := 64 - bits*(level+1)
		if shift < 0 {
			shift = 0
		}
		return int(h >> uint(shift) & uint64(fanout-1))
	}
}

// keyDigit partitions by the bits of the key itself (bucket sort on a
// dense domain [0, keyBits)): level 0 takes the most significant digit.
func keyDigit(fanout, keyBits int) digitFunc {
	bits := bitsLen(uint(fanout)) - 1
	return func(key uint64, level int) int {
		shift := keyBits - bits*(level+1)
		if shift < 0 {
			shift = 0
		}
		return int(key >> uint(shift) & uint64(fanout-1))
	}
}

// HashAggOpt is HASHAGGREGATION-OPTIMIZED: recursive partitioning by hash
// value until each partition aggregates in cache.
func HashAggOpt(m *Machine, input Array) Stats {
	k := distinctOf(input, 0, input.Len())
	out := m.NewArray(2 * max(k, 1))
	fanout := simFanout(m)
	budget := m.Cache.CapacityLines() * m.Cache.LineWords() / 2
	groups := partitionRec(m, input, 0, input.Len(), 0, fanout, budget,
		hashDigit(fanout), out, 0)
	return captureStats(m, int64(groups), out)
}

// SortAggOpt is SORTAGGREGATION-OPTIMIZED: identical recursion but
// partitioning by the key's own (dense-domain) digits, with the final
// bucket-sort pass fused with aggregation. That it shares its entire
// implementation with HashAggOpt except for the digit function is the
// paper's thesis in code form.
func SortAggOpt(m *Machine, input Array, keyBits int) Stats {
	k := distinctOf(input, 0, input.Len())
	out := m.NewArray(2 * max(k, 1))
	fanout := simFanout(m)
	budget := m.Cache.CapacityLines() * m.Cache.LineWords() / 2
	groups := partitionRec(m, input, 0, input.Len(), 0, fanout, budget,
		keyDigit(fanout, keyBits), out, 0)
	return captureStats(m, int64(groups), out)
}

// sortRec recursively bucket-sorts rows [lo, hi) of input in place-ish:
// partitions fitting in cache are sorted in cache and written to dst at
// position pos; larger ones are scattered and recursed. Returns new pos.
func sortRec(m *Machine, input Array, lo, hi int, level int, fanout int,
	cacheBudgetWords int, digit digitFunc, dst Array, pos int) int {
	n := hi - lo
	if n == 0 {
		return pos
	}
	if n <= cacheBudgetWords || level >= hashfn.MaxLevels {
		// Sort in cache: load partition (charged), sort underlying
		// storage (in-cache compute, accesses hit), write out.
		keys := make([]uint64, 0, n)
		for i := lo; i < hi; i++ {
			keys = append(keys, input.Read(i))
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for i, k := range keys {
			dst.Write(pos+i, k)
		}
		return pos + n
	}
	parts := make([]Array, fanout)
	fill := make([]int, fanout)
	for p := range parts {
		parts[p] = m.NewArray(n)
	}
	for i := lo; i < hi; i++ {
		key := input.Read(i)
		p := digit(key, level)
		parts[p].Write(fill[p], key)
		fill[p]++
	}
	for p := 0; p < fanout; p++ {
		pos = sortRec(m, parts[p], 0, fill[p], level+1, fanout,
			cacheBudgetWords, digit, dst, pos)
	}
	return pos
}

// SortAggNaive is textbook SORTAGGREGATION: fully sort the input (bucket
// sort to cache-sized partitions, in-cache sort of each), then a separate
// aggregation pass over the sorted data.
func SortAggNaive(m *Machine, input Array, keyBits int) Stats {
	n := input.Len()
	fanout := simFanout(m)
	budget := m.Cache.CapacityLines() * m.Cache.LineWords() / 2
	sorted := m.NewArray(n)
	end := sortRec(m, input, 0, n, 0, fanout, budget, keyDigit(fanout, keyBits), sorted, 0)
	if end != n {
		panic("cachesim: sort lost rows")
	}
	k := distinctOf(sorted, 0, n)
	out := m.NewArray(2 * max(k, 1))
	// Separate aggregation pass: read all rows, write one (key, count)
	// per group boundary.
	groups := 0
	if n > 0 {
		cur := sorted.Read(0)
		count := uint64(1)
		for i := 1; i < n; i++ {
			k := sorted.Read(i)
			if k == cur {
				count++
				continue
			}
			out.Write(2*groups, cur)
			out.Write(2*groups+1, count)
			groups++
			cur, count = k, 1
		}
		out.Write(2*groups, cur)
		out.Write(2*groups+1, count)
		groups++
	}
	return captureStats(m, int64(groups), out)
}

// VerifyCounts recomputes the aggregation result of input outside the
// simulation and compares it with the (key, count) pairs in out[0:2*groups].
// It returns false on any mismatch. Tests use it to prove the instrumented
// algorithms are real implementations, not transfer-count stubs.
func VerifyCounts(input Array, out Array, groups int64) bool {
	want := map[uint64]uint64{}
	for i := 0; i < input.Len(); i++ {
		want[input.Peek(i)]++
	}
	if int64(len(want)) != groups {
		return false
	}
	got := map[uint64]uint64{}
	for g := int64(0); g < groups; g++ {
		k := out.Peek(int(2 * g))
		c := out.Peek(int(2*g + 1))
		if _, dup := got[k]; dup {
			return false
		}
		got[k] = c
	}
	for k, c := range want {
		if got[k] != c {
			return false
		}
	}
	return true
}
