// Multigroupby: GROUP BY over composite and string keys.
//
// The paper's operator — like most column-store aggregation kernels —
// works on 64-bit integer grouping keys. This example shows the
// dictionary-encoding bridge the library provides for realistic schemas:
//
//	SELECT region, product, COUNT(*), SUM(units), AVG(price)
//	FROM sales GROUP BY region, product          -- composite key
//
//	SELECT city, COUNT(*) FROM visits GROUP BY city   -- string key
//
// Run with: go run ./examples/multigroupby
package main

import (
	"fmt"
	"log"
	"sort"

	"cacheagg"
	"cacheagg/internal/xrand"
)

func main() {
	compositeKeys()
	stringKeys()
}

func compositeKeys() {
	const rows = 500_000
	rng := xrand.NewXoshiro256(99)
	regions := []uint64{1, 2, 3, 4}
	region := make([]uint64, rows)
	product := make([]uint64, rows)
	units := make([]int64, rows)
	price := make([]int64, rows)
	for i := 0; i < rows; i++ {
		region[i] = regions[rng.Intn(len(regions))]
		product[i] = 100 + rng.Uint64n(25)
		units[i] = 1 + int64(rng.Uint64n(9))
		price[i] = 10 + int64(rng.Uint64n(90))
	}

	res, err := cacheagg.AggregateMulti(cacheagg.MultiInput{
		GroupBy: [][]uint64{region, product},
		Columns: [][]int64{units, price},
		Aggregates: []cacheagg.AggSpec{
			{Func: cacheagg.Count},
			{Func: cacheagg.Sum, Col: 0},
			{Func: cacheagg.Avg, Col: 1},
		},
	}, cacheagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GROUP BY (region, product): %d rows → %d groups\n", rows, res.Len())

	// Show region 1's three best-selling products.
	type row struct {
		product     uint64
		orders, qty int64
		avgPrice    float64
	}
	var r1 []row
	for i := 0; i < res.Len(); i++ {
		if res.GroupCols[0][i] == 1 {
			r1 = append(r1, row{res.GroupCols[1][i], res.Aggs[0][i], res.Aggs[1][i], res.Float(2, i)})
		}
	}
	sort.Slice(r1, func(a, b int) bool { return r1[a].qty > r1[b].qty })
	fmt.Println("region 1, top products:  product   orders   units   avg price")
	for i := 0; i < 3 && i < len(r1); i++ {
		fmt.Printf("                         %7d  %7d  %6d  %10.2f\n",
			r1[i].product, r1[i].orders, r1[i].qty, r1[i].avgPrice)
	}
	fmt.Println()
}

func stringKeys() {
	visits := []string{
		"paris", "tokyo", "paris", "berlin", "tokyo", "paris",
		"nairobi", "berlin", "tokyo", "tokyo",
	}
	res, err := cacheagg.AggregateStrings(cacheagg.StringInput{
		GroupBy:    visits,
		Aggregates: []cacheagg.AggSpec{{Func: cacheagg.Count}},
	}, cacheagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GROUP BY city:")
	order := make([]int, res.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Groups[order[a]] < res.Groups[order[b]] })
	for _, i := range order {
		fmt.Printf("  %-8s %d visits\n", res.Groups[i], res.Aggs[0][i])
	}
}
