package main

// `aggbench compare`: diff two sweep-record JSON files (the -json output
// of the sweep/external commands, or the committed BENCH_phase*.json
// baselines) into a markdown delta table.
//
// Built for the CI bench-delta step: it writes to $GITHUB_STEP_SUMMARY
// when set, annotates each point against a noise tolerance, and NEVER
// fails — shared-runner benchmark noise must not gate merges, so every
// outcome (missing files included) exits 0 with a note in the table.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
)

// workersRe matches the worker-count component of a point name so that
// baselines recorded on machines with a different core count still pair
// with fresh runs (external/seq/P=8/... vs P=4/...).
var workersRe = regexp.MustCompile(`P=\d+`)

func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "baseline records JSON (e.g. BENCH_phase3.json)")
	current := fs.String("current", "", "fresh records JSON from this run")
	title := fs.String("title", "Bench delta", "heading of the markdown section")
	tol := fs.Float64("tolerance", 10, "percent change considered within noise")
	outPath := fs.String("out", "", "write markdown here (default: $GITHUB_STEP_SUMMARY, else stdout)")
	if err := fs.Parse(args); err != nil {
		return 0 // non-gating by contract, even on bad flags
	}

	var out io.Writer = os.Stdout
	if *outPath == "" {
		*outPath = os.Getenv("GITHUB_STEP_SUMMARY")
	}
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench compare: %v (falling back to stdout)\n", err)
		} else {
			defer f.Close()
			out = f
		}
	}
	writeCompare(out, *title, *baseline, *current, *tol)
	return 0
}

func writeCompare(out io.Writer, title, basePath, curPath string, tol float64) {
	fmt.Fprintf(out, "### %s\n\n", title)
	base, berr := readRecords(basePath)
	cur, cerr := readRecords(curPath)
	if berr != nil || cerr != nil {
		// A missing or malformed file is a note, not a failure: fresh
		// checkouts may predate a baseline, and the delta is advisory.
		if berr != nil {
			fmt.Fprintf(out, "baseline `%s` unavailable: %v\n\n", basePath, berr)
		}
		if cerr != nil {
			fmt.Fprintf(out, "current `%s` unavailable: %v\n\n", curPath, cerr)
		}
		return
	}
	fmt.Fprintf(out, "`%s` → `%s`, noise tolerance ±%.0f%% (advisory, never gates)\n\n",
		basePath, curPath, tol)
	fmt.Fprintln(out, "| point | baseline ns/op | current ns/op | Δ | |")
	fmt.Fprintln(out, "|---|---:|---:|---:|---|")

	// Exact name match first; if a point finds no partner, retry with the
	// worker count wildcarded (baselines are recorded on other machines).
	baseByName := map[string]sweepRecord{}
	baseByNorm := map[string]sweepRecord{}
	for _, r := range base {
		baseByName[r.Name] = r
		baseByNorm[workersRe.ReplaceAllString(r.Name, "P=*")] = r
	}
	names := make([]string, 0, len(cur))
	curByName := map[string]sweepRecord{}
	for _, r := range cur {
		names = append(names, r.Name)
		curByName[r.Name] = r
	}
	sort.Strings(names)
	unmatched := 0
	for _, name := range names {
		c := curByName[name]
		b, ok := baseByName[name]
		if !ok {
			b, ok = baseByNorm[workersRe.ReplaceAllString(name, "P=*")]
		}
		if !ok || b.NsPerOp <= 0 {
			// Even the P=* fallback found nothing (or the baseline row is
			// degenerate): say so explicitly rather than implying the point
			// was compared.
			unmatched++
			fmt.Fprintf(out, "| %s | — | %.0f | — | no baseline point |\n", name, c.NsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		note := "ok"
		switch {
		case delta > tol:
			note = fmt.Sprintf("slower than baseline by >%.0f%%", tol)
		case delta < -tol:
			note = fmt.Sprintf("faster than baseline by >%.0f%%", tol)
		case math.Abs(delta) <= tol:
			note = "within noise"
		}
		fmt.Fprintf(out, "| %s | %.0f | %.0f | %+.1f%% | %s |\n",
			name, b.NsPerOp, c.NsPerOp, delta, note)
	}
	fmt.Fprintf(out, "\n%d points compared, %d without a baseline partner.\n\n",
		len(names)-unmatched, unmatched)
}

func readRecords(path string) ([]sweepRecord, error) {
	if path == "" {
		return nil, fmt.Errorf("no file given")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Two formats exist: the original bare record list (phase ≤ 8
	// baselines) and the object form with a meta block (phase 9+).
	var recs []sweepRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		var f sweepFile
		if err2 := json.Unmarshal(data, &f); err2 != nil {
			return nil, fmt.Errorf("parse: %w", err)
		}
		recs = f.Records
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no records")
	}
	return recs, nil
}
