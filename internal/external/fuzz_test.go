package external

// Fuzz target for the spill-file decoder: arbitrary bytes must never
// panic readSpill, and whatever it accepts must be structurally sound.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"cacheagg/internal/agg"
)

// encodeSpill builds valid spill-file bytes for a width-1 plan.
func encodeSpill(keys []uint64, partials []uint64) []byte {
	const recSize = 16
	crc := crc32.NewIEEE()
	buf := make([]byte, 0, spillHeaderSize+len(keys)*recSize+spillFooterSize)
	var hdr [spillHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint16(hdr[4:], spillVersion)
	binary.LittleEndian.PutUint16(hdr[6:], recSize)
	buf = append(buf, hdr[:]...)
	crc.Write(hdr[:])
	var rec [recSize]byte
	for i, k := range keys {
		binary.LittleEndian.PutUint64(rec[0:], k)
		binary.LittleEndian.PutUint64(rec[8:], partials[i])
		buf = append(buf, rec[:]...)
		crc.Write(rec[:])
	}
	var ftr [spillFooterSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], uint64(len(keys)))
	binary.LittleEndian.PutUint32(ftr[8:], crc.Sum32())
	binary.LittleEndian.PutUint32(ftr[12:], spillEndMagic)
	return append(buf, ftr[:]...)
}

func FuzzSpillDecoder(f *testing.F) {
	valid := encodeSpill([]uint64{1, 2, 3}, []uint64{10, 20, 30})
	f.Add(valid)
	f.Add(encodeSpill(nil, nil))
	f.Add(valid[:len(valid)-5])          // truncated footer
	f.Add(valid[:spillHeaderSize])       // header only
	f.Add([]byte{})                      // empty file
	f.Add([]byte("CAGSnotreallyaspill")) // magic prefix, garbage rest
	mut := append([]byte(nil), valid...)
	mut[spillHeaderSize+3] ^= 0xFF // bit rot in a record
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		e := &extExec{
			cfg:  Config{}.withDefaults(),
			plan: buildPlan([]agg.Spec{{Kind: agg.Count}}),
		}
		path := filepath.Join(t.TempDir(), "fuzz.spill")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		keys, partials, err := e.readSpill(path)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted: the decode must be self-consistent, and re-encoding
		// and re-decoding it must reproduce the same rows (the reserved
		// header bytes are the only slack in the format).
		if len(partials) != 1 || len(partials[0]) != len(keys) {
			t.Fatalf("inconsistent decode: %d keys, %d partial columns", len(keys), len(partials))
		}
		path2 := filepath.Join(t.TempDir(), "fuzz2.spill")
		if err := os.WriteFile(path2, encodeSpill(keys, partials[0]), 0o644); err != nil {
			t.Fatal(err)
		}
		keys2, partials2, err := e.readSpill(path2)
		if err != nil {
			t.Fatalf("re-encoded accepted file rejected: %v", err)
		}
		if len(keys2) != len(keys) {
			t.Fatalf("round-trip changed row count: %d vs %d", len(keys2), len(keys))
		}
		for i := range keys {
			if keys2[i] != keys[i] || partials2[0][i] != partials[0][i] {
				t.Fatalf("round-trip changed row %d", i)
			}
		}
	})
}
