// Package partition implements the PARTITIONING routine of the framework
// (paper Sections 3.1 and 4.2): radix scatter by one hash digit with a
// fan-out of 256, using software write-combining and the two-level
// list-of-arrays output structure.
//
// Software write-combining (Intel's term, used by Balkesen et al. and
// Wassenberg & Sanders) buffers one cache line worth of rows per partition
// and flushes a full buffer with a single bulk copy. The original purpose —
// avoiding read-before-write traffic and TLB misses from writing to 256
// scattered pages — translates in Go to: per-row work touches only a small,
// cache-resident buffer block, and the scattered destinations are touched
// only by wide copies. The main loop is unrolled in blocks of 16 rows whose
// digits are extracted before any buffer is touched, mirroring the paper's
// out-of-order-execution unrolling ("oo", +24 % in Figure 3).
package partition

import (
	"fmt"

	"cacheagg/internal/hashfn"
	"cacheagg/internal/runs"
)

// DefaultBufRows is the software-write-combining buffer size per partition,
// in rows. 64 rows × 8 bytes = 512 bytes per buffered column — a few cache
// lines per partition, the same order as the paper's one-line buffers while
// amortizing Go's bounds checks over longer copies.
const DefaultBufRows = 64

// unroll is the block size of the digit-precomputation loop (the paper
// unrolls "into blocks of 16 elements, which are first all hashed and then
// all put into their partition buffers").
const unroll = 16

// Config configures a Scatterer.
type Config struct {
	// Level selects the radix digit: digit = hashfn.Digit(hash, Level).
	Level int
	// Words is the number of aggregate state columns to move along.
	Words int
	// BufRows is the SWC buffer capacity per partition (0 → DefaultBufRows).
	BufRows int
	// ChunkRows is the chunk size of the output writers (0 → default).
	ChunkRows int
	// DropHashes discards the hash column on output: the produced runs
	// hold only keys and states, and downstream passes recompute hashes
	// from the keys (the paper's layout; saves 8 bytes of traffic per row
	// in both directions). Digits are still taken from the hashes passed
	// to Scatter, which callers compute block-wise anyway.
	DropHashes bool
}

// Scatterer scatters rows into 256 per-digit outputs. It is not safe for
// concurrent use; the parallel driver gives each worker its own Scatterer.
type Scatterer struct {
	level   int
	shift   uint
	words   int
	bufRows int

	// SWC buffers, contiguous per column: partition p occupies
	// [p*bufRows, (p+1)*bufRows).
	bufHash  []uint64
	bufKey   []uint64
	bufState [][]uint64
	bufLen   []int

	// flushViews is a reusable [words][]uint64 scratch for AppendBlock.
	flushViews [][]uint64

	writers    []*runs.Writer
	rows       int
	chunkRows  int
	dropHashes bool
}

// New creates a Scatterer.
func New(cfg Config) *Scatterer {
	if cfg.Level < 0 || cfg.Level >= hashfn.MaxLevels {
		panic(fmt.Sprintf("partition: level %d out of range", cfg.Level))
	}
	if cfg.Words < 0 {
		panic("partition: negative words")
	}
	bufRows := cfg.BufRows
	if bufRows <= 0 {
		bufRows = DefaultBufRows
	}
	s := &Scatterer{
		level:      cfg.Level,
		shift:      uint(64 - hashfn.DigitBits*(cfg.Level+1)),
		words:      cfg.Words,
		bufRows:    bufRows,
		bufHash:    make([]uint64, hashfn.Fanout*bufRows),
		bufKey:     make([]uint64, hashfn.Fanout*bufRows),
		bufState:   make([][]uint64, cfg.Words),
		bufLen:     make([]int, hashfn.Fanout),
		flushViews: make([][]uint64, cfg.Words),
		writers:    make([]*runs.Writer, hashfn.Fanout),
		chunkRows:  cfg.ChunkRows,
		dropHashes: cfg.DropHashes,
	}
	for w := range s.bufState {
		s.bufState[w] = make([]uint64, hashfn.Fanout*bufRows)
	}
	for p := range s.writers {
		s.writers[p] = runs.NewWriterDrop(cfg.ChunkRows, cfg.Words, cfg.DropHashes)
	}
	return s
}

// Rows returns the number of rows scattered so far (including rows still
// sitting in SWC buffers).
func (s *Scatterer) Rows() int { return s.rows }

// Level returns the radix level the scatterer was created for.
func (s *Scatterer) Level() int { return s.level }

// Reset re-targets the scatterer to a new level with fresh writers while
// keeping its buffers, so one worker can reuse the (sizable) SWC buffer
// allocation across bucket tasks. It panics if rows are still buffered —
// the previous task must have flushed or sealed.
func (s *Scatterer) Reset(level int) {
	if level < 0 || level >= hashfn.MaxLevels {
		panic(fmt.Sprintf("partition: level %d out of range", level))
	}
	for p, n := range s.bufLen {
		if n != 0 {
			panic(fmt.Sprintf("partition: Reset with %d rows buffered in partition %d", n, p))
		}
	}
	s.level = level
	s.shift = uint(64 - hashfn.DigitBits*(level+1))
	s.rows = 0
	for p := range s.writers {
		s.writers[p] = runs.NewWriterDrop(s.chunkRows, s.words, s.dropHashes)
	}
}

func (s *Scatterer) flushPartition(p int) {
	n := s.bufLen[p]
	if n == 0 {
		return
	}
	base := p * s.bufRows
	for w := 0; w < s.words; w++ {
		s.flushViews[w] = s.bufState[w][base : base+n]
	}
	s.writers[p].AppendBlock(s.bufHash[base:base+n], s.bufKey[base:base+n], s.flushViews, 0, n)
	s.bufLen[p] = 0
}

// put places one row into its partition buffer, flushing first if full.
func (s *Scatterer) put(p int, h, k uint64, states [][]uint64, i int) {
	if s.bufLen[p] == s.bufRows {
		s.flushPartition(p)
	}
	idx := p*s.bufRows + s.bufLen[p]
	s.bufHash[idx] = h
	s.bufKey[idx] = k
	for w := 0; w < s.words; w++ {
		s.bufState[w][idx] = states[w][i]
	}
	s.bufLen[p]++
	s.rows++
}

// Scatter scatters all rows of the given columns. states must have exactly
// the configured number of word columns (may be nil when words is 0).
//
// The loop is structured like the paper's tuned routine: digits of 16 rows
// are extracted into a local block first, then the block is drained into
// the partition buffers. The inner loop is dispatched once per call to a
// monomorphic specialization for the common word counts (0 = DISTINCT,
// 1 = single-aggregate), which keeps every buffer column in a register-
// resident local instead of re-loading slice headers per row per word.
func (s *Scatterer) Scatter(hashes, keys []uint64, states [][]uint64) {
	if len(hashes) != len(keys) {
		panic("partition: column length mismatch")
	}
	switch s.words {
	case 0:
		s.scatter0(hashes, keys)
	case 1:
		s.scatter1(hashes, keys, states[0])
	default:
		s.scatterN(hashes, keys, states)
	}
}

// scatter0 is the words=0 (DISTINCT) specialization. When the writers drop
// hashes (the paper's run layout) the hash column is never read back out of
// the SWC buffers — AppendBlock discards it — so its stores are skipped too.
func (s *Scatterer) scatter0(hashes, keys []uint64) {
	bufHash, bufKey, bufLen := s.bufHash, s.bufKey, s.bufLen
	shift, bufRows := s.shift, s.bufRows
	drop := s.dropHashes
	var digits [unroll]int
	n := len(hashes)
	i := 0
	for ; i+unroll <= n; i += unroll {
		hs := hashes[i : i+unroll]
		for j := 0; j < unroll; j++ {
			digits[j] = int(hs[j] >> shift & (hashfn.Fanout - 1))
		}
		for j := 0; j < unroll; j++ {
			p := digits[j]
			l := bufLen[p]
			if l == bufRows {
				s.flushPartition(p)
				l = 0
			}
			idx := p*bufRows + l
			if !drop {
				bufHash[idx] = hashes[i+j]
			}
			bufKey[idx] = keys[i+j]
			bufLen[p] = l + 1
		}
	}
	for ; i < n; i++ {
		p := int(hashes[i] >> shift & (hashfn.Fanout - 1))
		l := bufLen[p]
		if l == bufRows {
			s.flushPartition(p)
			l = 0
		}
		idx := p*bufRows + l
		if !drop {
			bufHash[idx] = hashes[i]
		}
		bufKey[idx] = keys[i]
		bufLen[p] = l + 1
	}
	s.rows += n
}

// scatter1 is the words=1 (single aggregate state word) specialization.
func (s *Scatterer) scatter1(hashes, keys, st0 []uint64) {
	bufHash, bufKey, bufLen := s.bufHash, s.bufKey, s.bufLen
	bufSt := s.bufState[0]
	shift, bufRows := s.shift, s.bufRows
	drop := s.dropHashes
	var digits [unroll]int
	n := len(hashes)
	i := 0
	for ; i+unroll <= n; i += unroll {
		hs := hashes[i : i+unroll]
		for j := 0; j < unroll; j++ {
			digits[j] = int(hs[j] >> shift & (hashfn.Fanout - 1))
		}
		for j := 0; j < unroll; j++ {
			p := digits[j]
			l := bufLen[p]
			if l == bufRows {
				s.flushPartition(p)
				l = 0
			}
			idx := p*bufRows + l
			if !drop {
				bufHash[idx] = hashes[i+j]
			}
			bufKey[idx] = keys[i+j]
			bufSt[idx] = st0[i+j]
			bufLen[p] = l + 1
		}
	}
	for ; i < n; i++ {
		p := int(hashes[i] >> shift & (hashfn.Fanout - 1))
		l := bufLen[p]
		if l == bufRows {
			s.flushPartition(p)
			l = 0
		}
		idx := p*bufRows + l
		if !drop {
			bufHash[idx] = hashes[i]
		}
		bufKey[idx] = keys[i]
		bufSt[idx] = st0[i]
		bufLen[p] = l + 1
	}
	s.rows += n
}

// scatterN is the general multi-word loop, with the same hoisted buffer
// locals and batched accounting as the specializations (only the per-word
// state copy stays a loop).
func (s *Scatterer) scatterN(hashes, keys []uint64, states [][]uint64) {
	bufHash, bufKey, bufLen := s.bufHash, s.bufKey, s.bufLen
	bufState := s.bufState
	shift, bufRows := s.shift, s.bufRows
	drop := s.dropHashes
	words := s.words
	var digits [unroll]int
	n := len(hashes)
	i := 0
	for ; i+unroll <= n; i += unroll {
		hs := hashes[i : i+unroll]
		for j := 0; j < unroll; j++ {
			digits[j] = int(hs[j] >> shift & (hashfn.Fanout - 1))
		}
		for j := 0; j < unroll; j++ {
			p := digits[j]
			l := bufLen[p]
			if l == bufRows {
				s.flushPartition(p)
				l = 0
			}
			idx := p*bufRows + l
			if !drop {
				bufHash[idx] = hashes[i+j]
			}
			bufKey[idx] = keys[i+j]
			for w := 0; w < words; w++ {
				bufState[w][idx] = states[w][i+j]
			}
			bufLen[p] = l + 1
		}
	}
	for ; i < n; i++ {
		p := int(hashes[i] >> shift & (hashfn.Fanout - 1))
		l := bufLen[p]
		if l == bufRows {
			s.flushPartition(p)
			l = 0
		}
		idx := p*bufRows + l
		if !drop {
			bufHash[idx] = hashes[i]
		}
		bufKey[idx] = keys[i]
		for w := 0; w < words; w++ {
			bufState[w][idx] = states[w][i]
		}
		bufLen[p] = l + 1
	}
	s.rows += n
}

// ScatterRun scatters one run.
func (s *Scatterer) ScatterRun(r *runs.Run) {
	s.Scatter(r.Hashes, r.Keys, r.States)
}

// Add scatters a single row given its packed state vector.
func (s *Scatterer) Add(h, k uint64, state []uint64) {
	p := int(h >> s.shift & (hashfn.Fanout - 1))
	if s.bufLen[p] == s.bufRows {
		s.flushPartition(p)
	}
	idx := p*s.bufRows + s.bufLen[p]
	s.bufHash[idx] = h
	s.bufKey[idx] = k
	for w := 0; w < s.words; w++ {
		s.bufState[w][idx] = state[w]
	}
	s.bufLen[p]++
	s.rows++
}

// Flush drains all partition buffers into the writers.
func (s *Scatterer) Flush() {
	for p := 0; p < hashfn.Fanout; p++ {
		s.flushPartition(p)
	}
}

// SealInto flushes and seals every partition's writer into the
// corresponding bucket of the 256-element bucket slice.
func (s *Scatterer) SealInto(buckets []*runs.Bucket) {
	if len(buckets) != hashfn.Fanout {
		panic("partition: bucket slice must have fan-out length")
	}
	s.Flush()
	for p, w := range s.writers {
		w.SealInto(buckets[p])
	}
}

// Seal flushes and returns the per-digit runs, indexed by digit.
func (s *Scatterer) Seal() [][]*runs.Run {
	s.Flush()
	out := make([][]*runs.Run, hashfn.Fanout)
	for p, w := range s.writers {
		out[p] = w.Seal()
	}
	return out
}

// NaiveScatter is the untuned partitioning loop used as the Figure 3
// baseline: one row at a time, appended straight to the destination writer
// with no write combining and no unrolling.
func NaiveScatter(level, words int, hashes, keys []uint64, states [][]uint64) [][]*runs.Run {
	if level < 0 || level >= hashfn.MaxLevels {
		panic("partition: level out of range")
	}
	shift := uint(64 - hashfn.DigitBits*(level+1))
	writers := make([]*runs.Writer, hashfn.Fanout)
	for p := range writers {
		writers[p] = runs.NewWriter(0, words)
	}
	state := make([]uint64, words)
	for i := range hashes {
		p := int(hashes[i] >> shift & (hashfn.Fanout - 1))
		for w := 0; w < words; w++ {
			state[w] = states[w][i]
		}
		writers[p].Append(hashes[i], keys[i], state)
	}
	out := make([][]*runs.Run, hashfn.Fanout)
	for p, w := range writers {
		out[p] = w.Seal()
	}
	return out
}
