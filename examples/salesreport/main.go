// Salesreport: a realistic column-store workload — the kind of query the
// paper's introduction motivates ("queries with a GROUP BY clause" over
// large analytical tables).
//
// It builds a 2-million-row sales fact table with a skewed customer
// dimension (80–20 self-similar: a few big customers dominate, like real
// order books), then answers
//
//	SELECT customer, COUNT(*), SUM(qty), SUM(price), MAX(price), AVG(qty)
//	FROM sales GROUP BY customer
//
// and prints the top customers by revenue. The execution statistics show
// the adaptive operator exploiting the skew: most rows are absorbed by the
// HASHING routine's early aggregation.
//
// Run with: go run ./examples/salesreport
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"cacheagg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

func main() {
	const rows = 2 << 20
	const customers = 200_000

	// Fact table columns.
	customer := datagen.Generate(datagen.Spec{
		Dist: datagen.SelfSimilar, N: rows, K: customers, Seed: 2026,
	})
	qty := make([]int64, rows)
	price := make([]int64, rows)
	rng := xrand.NewXoshiro256(7)
	for i := 0; i < rows; i++ {
		qty[i] = 1 + int64(rng.Uint64n(20))
		price[i] = 5 + int64(rng.Uint64n(500))
	}

	start := time.Now()
	res, err := cacheagg.Aggregate(cacheagg.Input{
		GroupBy: customer,
		Columns: [][]int64{qty, price},
		Aggregates: []cacheagg.AggSpec{
			{Func: cacheagg.Count},
			{Func: cacheagg.Sum, Col: 0}, // total quantity
			{Func: cacheagg.Sum, Col: 1}, // revenue
			{Func: cacheagg.Max, Col: 1}, // biggest single price
			{Func: cacheagg.Avg, Col: 0}, // average quantity
		},
	}, cacheagg.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("aggregated %d rows into %d customer groups in %v (%.1f ns/row)\n",
		rows, res.Len(), elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/rows)
	st := res.Stats
	fmt.Printf("passes=%d  hashed=%d rows  partitioned=%d rows  switches=%d\n",
		st.Passes, st.HashedRows, st.PartitionedRows, st.Switches)
	if st.HashedRows > st.PartitionedRows {
		fmt.Println("→ the skew was detected: early aggregation did most of the work")
	}

	// Top 5 customers by revenue.
	idx := make([]int, res.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return res.Aggs[2][idx[a]] > res.Aggs[2][idx[b]] })
	fmt.Println("\ncustomer   orders   qty     revenue  max price  avg qty")
	for rank := 0; rank < 5 && rank < len(idx); rank++ {
		i := idx[rank]
		fmt.Printf("%8d  %7d  %6d  %8d  %9d  %7.2f\n",
			res.Groups[i], res.Aggs[0][i], res.Aggs[1][i], res.Aggs[2][i],
			res.Aggs[3][i], res.Float(4, i))
	}
}
