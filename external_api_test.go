package cacheagg

import (
	"testing"

	"cacheagg/internal/datagen"
	"cacheagg/internal/xrand"
)

func TestAggregateExternalMatchesInMemory(t *testing.T) {
	const n = 120000
	keys := datagen.Generate(datagen.Spec{Dist: datagen.Zipf, N: n, K: 30000, Seed: 31})
	rng := xrand.NewXoshiro256(5)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Next()%500) - 250
	}
	in := Input{
		GroupBy: keys,
		Columns: [][]int64{vals},
		Aggregates: []AggSpec{
			{Func: Count}, {Func: Sum, Col: 0}, {Func: Avg, Col: 0},
		},
	}
	mem, err := Aggregate(in, opts())
	if err != nil {
		t.Fatal(err)
	}
	ext, err := AggregateExternal(in, opts(), ExternalOptions{
		MemoryBudgetRows: 10000,
		TempDir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len() != mem.Len() {
		t.Fatalf("external %d groups vs in-memory %d", ext.Len(), mem.Len())
	}
	if ext.Stats.Chunks != 12 {
		t.Fatalf("chunks = %d, want 12", ext.Stats.Chunks)
	}
	if ext.Stats.SpilledRows == 0 || ext.Stats.SpilledBytes == 0 {
		t.Fatal("expected spilling")
	}

	memBy := map[uint64][3]int64{}
	for i, g := range mem.Groups {
		memBy[g] = [3]int64{mem.Aggs[0][i], mem.Aggs[1][i], mem.Aggs[2][i]}
	}
	for i, g := range ext.Groups {
		got := [3]int64{ext.Aggs[0][i], ext.Aggs[1][i], ext.Aggs[2][i]}
		if memBy[g] != got {
			t.Fatalf("group %d: external %v vs in-memory %v", g, got, memBy[g])
		}
	}
}

func TestAggregateExternalInvalidFunc(t *testing.T) {
	_, err := AggregateExternal(Input{
		GroupBy:    []uint64{1},
		Aggregates: []AggSpec{{Func: Func(99)}},
	}, Options{}, ExternalOptions{})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestAggregateExternalEmpty(t *testing.T) {
	res, err := AggregateExternal(Input{}, Options{}, ExternalOptions{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatal("empty input should give no groups")
	}
}
