package faultfs

import (
	"errors"
	"io"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&InjectedError{Op: OpWrite, N: 1, Transient: true}, true},
		{&InjectedError{Op: OpWrite, N: 1}, false},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.EBUSY, true},
		{syscall.ENOSPC, false},
		{errors.New("some error"), false},
		{io.ErrUnexpectedEOF, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestFlakyFailsStreakThenSucceeds(t *testing.T) {
	inj := NewFlaky(OS(), OpWrite, 2, 3) // writes 2,3,4 fail transiently
	f, err := inj.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		_, err := f.Write([]byte("x"))
		var ie *InjectedError
		if !errors.As(err, &ie) || !ie.Transient {
			t.Fatalf("write %d: err = %v, want transient injected fault", i, err)
		}
	}
	if _, err := f.Write([]byte("b")); err != nil {
		t.Fatalf("write 5 (past streak): %v", err)
	}
}

// noSleep builds a policy that records backoff delays instead of sleeping.
func noSleep(attempts int) (RetryPolicy, *[]time.Duration) {
	delays := &[]time.Duration{}
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    3 * time.Millisecond,
		Sleep:       func(d time.Duration) { *delays = append(*delays, d) },
	}, delays
}

func TestRetryRidesOutTransientFaults(t *testing.T) {
	pol, delays := noSleep(4)
	rfs := NewRetry(NewFlaky(OS(), OpWrite, 1, 2), pol)
	f, err := rfs.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatalf("write should succeed after retries: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rfs.Retries(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	// Backoff doubles and is capped: 1ms, 2ms.
	if len(*delays) != 2 || (*delays)[0] != time.Millisecond || (*delays)[1] != 2*time.Millisecond {
		t.Fatalf("delays = %v", *delays)
	}
}

func TestRetryBackoffIsCapped(t *testing.T) {
	pol, delays := noSleep(6)
	rfs := NewRetry(NewFlaky(OS(), OpCreate, 1, 5), pol)
	if _, err := rfs.Create(filepath.Join(t.TempDir(), "f")); err != nil {
		t.Fatalf("create should succeed on attempt 6: %v", err)
	}
	// 1ms, 2ms, then capped at 3ms.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 3 * time.Millisecond, 3 * time.Millisecond}
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v", *delays)
	}
	for i := range want {
		if (*delays)[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, (*delays)[i], want[i])
		}
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	pol, _ := noSleep(3)
	rfs := NewRetry(NewFlaky(OS(), OpOpen, 1, 100), pol)
	path := filepath.Join(t.TempDir(), "f")
	f, err := OS().Create(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = rfs.Open(path)
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Transient {
		t.Fatalf("exhausted retry must surface the transient fault: %v", err)
	}
	if got := rfs.Retries(); got != 2 {
		t.Fatalf("Retries = %d, want 2 (3 attempts)", got)
	}
}

func TestRetryDoesNotRetryPermanentFaults(t *testing.T) {
	pol, delays := noSleep(4)
	rfs := NewRetry(NewInjector(OS(), OpWrite, 1), pol) // permanent fault
	f, err := rfs.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("permanent fault swallowed")
	}
	if len(*delays) != 0 || rfs.Retries() != 0 {
		t.Fatalf("permanent fault was retried: %d retries", rfs.Retries())
	}
}

func TestRetryReadResumesAfterTransientFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := OS().Create(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("0123456789"))
	f.Close()

	pol, _ := noSleep(4)
	// bufio-free read: the 2nd raw read faults transiently; the wrapper must
	// retry it and the caller must see the full contents exactly once.
	rfs := NewRetry(NewFlaky(OS(), OpRead, 2, 1), pol)
	r, err := rfs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4)
	var got []byte
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if string(got) != "0123456789" {
		t.Fatalf("read %q, want the full contents with no duplication", got)
	}
	if rfs.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", rfs.Retries())
	}
}

func TestChaosIsDeterministicPerSeed(t *testing.T) {
	runOnce := func(seed uint64) (int64, []bool) {
		c := NewChaos(OS(), seed, 300)
		dir := t.TempDir()
		var outcomes []bool
		for i := 0; i < 50; i++ {
			f, err := c.Create(filepath.Join(dir, "f"))
			outcomes = append(outcomes, err == nil)
			if err == nil {
				f.Close()
			}
		}
		return c.Faults(), outcomes
	}
	f1, o1 := runOnce(42)
	f2, o2 := runOnce(42)
	if f1 != f2 {
		t.Fatalf("same seed, different fault counts: %d vs %d", f1, f2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	if f1 == 0 {
		t.Fatal("chaos at 30% never injected a fault in 100 ops")
	}
	f3, _ := runOnce(43)
	_ = f3 // different seed may coincide in count; determinism per seed is the contract
}

func TestChaosFaultsAreTransient(t *testing.T) {
	c := NewChaos(OS(), 7, 1000) // always fail
	_, err := c.Create(filepath.Join(t.TempDir(), "f"))
	if !IsTransient(err) {
		t.Fatalf("chaos fault not transient: %v", err)
	}
}

func TestOnRetryObserverMatchesRetriesCounter(t *testing.T) {
	pol, _ := noSleep(4)
	var ops []Op
	pol.OnRetry = func(op Op) { ops = append(ops, op) }
	rfs := NewRetry(NewFlaky(OS(), OpWrite, 1, 2), pol)
	f, err := rfs.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatalf("write should succeed after retries: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if int64(len(ops)) != rfs.Retries() {
		t.Fatalf("observer saw %d retries, counter says %d", len(ops), rfs.Retries())
	}
	for _, op := range ops {
		if op != OpWrite {
			t.Fatalf("observer ops = %v, want only write", ops)
		}
	}
}
