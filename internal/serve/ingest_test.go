package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"cacheagg/internal/testutil"
)

// postIngest sends one ingest operation and returns the HTTP response.
func postIngest(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// ingestJSON decodes a single-object ingest response (begin/push/seal/status).
func ingestJSON(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	return out
}

func wantStatus(t *testing.T, resp *http.Response, status int) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
}

// TestIngestLifecycle drives one session through its whole life — begin,
// push, seal, status, rolling-window query, finish — over the wire, and
// checks the final result against a hand-computed oracle.
func TestIngestLifecycle(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{IngestDir: dir, IngestNoSync: true})

	resp := postIngest(t, ts.URL, `{"session":"s1","op":"begin","aggregates":[{"func":"count"},{"func":"sum","col":0}]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	// A duplicate begin is a typed conflict.
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"begin","aggregates":[{"func":"count"}]}`)
	wantStatus(t, resp, http.StatusConflict)
	if code := errorCode(t, resp); code != "session_exists" {
		t.Fatalf("duplicate begin code = %q", code)
	}

	// Push two blocks: keys 1,2 with values summing per group.
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"push","keys":[1,2,1],"columns":[[10,20,30]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"seal"}`)
	wantStatus(t, resp, http.StatusOK)
	if out := ingestJSON(t, resp); out["epoch"].(float64) != 1 {
		t.Fatalf("seal epoch = %v, want 1", out["epoch"])
	}
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"push","keys":[2,3],"columns":[[5,7]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	resp = postIngest(t, ts.URL, `{"session":"s1","op":"status"}`)
	out := ingestJSON(t, resp)
	if out["rows_durable"].(float64) != 3 || out["rows_ingested"].(float64) != 5 {
		t.Fatalf("status = %v", out)
	}

	// A whole-stream query sees sealed and buffered rows alike.
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"query"}`)
	wantStatus(t, resp, http.StatusOK)
	hdr, rows := parseResponse(t, resp)
	if hdr["groups"].(float64) != 3 || hdr["session"].(string) != "s1" {
		t.Fatalf("query header = %v", hdr)
	}
	want := map[uint64][2]int64{1: {2, 40}, 2: {2, 25}, 3: {1, 7}}
	for _, r := range rows {
		w, ok := want[r.G]
		if !ok || r.A[0] != w[0] || r.A[1] != w[1] {
			t.Fatalf("group %d = %v, want %v", r.G, r.A, w)
		}
	}

	resp = postIngest(t, ts.URL, `{"session":"s1","op":"finish"}`)
	wantStatus(t, resp, http.StatusOK)
	if _, rows := parseResponse(t, resp); len(rows) != 3 {
		t.Fatalf("finish returned %d groups, want 3", len(rows))
	}

	// The finished session is gone from the live set…
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"status"}`)
	wantStatus(t, resp, http.StatusNotFound)
	if code := errorCode(t, resp); code != "unknown_session" {
		t.Fatalf("post-finish status code = %q", code)
	}
	// …and its durable directory refuses a fresh begin.
	resp = postIngest(t, ts.URL, `{"session":"s1","op":"begin","aggregates":[{"func":"count"}]}`)
	wantStatus(t, resp, http.StatusConflict)
	if code := errorCode(t, resp); code != "session_exists" {
		t.Fatalf("begin-over-finished code = %q", code)
	}
}

// TestIngestValidation pins the typed 4xx taxonomy of the ingest decoder
// and the disabled-endpoint refusal.
func TestIngestValidation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{IngestDir: t.TempDir(), IngestNoSync: true})

	for _, tc := range []struct {
		name, body, code string
	}{
		{"bad-json", `{`, "bad_request"},
		{"unknown-op", `{"session":"x","op":"zap"}`, "bad_request"},
		{"bad-session-name", `{"session":"../escape","op":"begin","aggregates":[{"func":"count"}]}`, "bad_request"},
		{"empty-session", `{"op":"status"}`, "bad_request"},
		{"begin-no-aggs", `{"session":"x","op":"begin"}`, "bad_request"},
		{"begin-bad-func", `{"session":"x","op":"begin","aggregates":[{"func":"median"}]}`, "bad_request"},
		{"push-empty", `{"session":"x","op":"push"}`, "bad_request"},
		{"push-ragged", `{"session":"x","op":"push","keys":[1,2],"columns":[[1]]}`, "bad_request"},
		{"query-negative-window", `{"session":"x","op":"query","window":-1}`, "bad_request"},
		{"trailing-garbage", `{"session":"x","op":"status"}{}`, "bad_request"},
		{"unknown-session", `{"session":"nope","op":"push","keys":[1]}`, "unknown_session"},
	} {
		resp := postIngest(t, ts.URL, tc.body)
		if code := errorCode(t, resp); code != tc.code {
			t.Fatalf("%s: code = %q, want %q", tc.name, code, tc.code)
		}
	}

	// A server without an ingest dir refuses with a typed 404.
	_, off := newTestServer(t, Config{})
	resp := postIngest(t, off.URL, `{"session":"x","op":"status"}`)
	wantStatus(t, resp, http.StatusNotFound)
	if code := errorCode(t, resp); code != "ingest_disabled" {
		t.Fatalf("disabled code = %q", code)
	}
}

// TestIngestBackpressure forces the session budget down until a push is
// refused, and checks the refusal is a 429 with code "backpressure" and a
// Retry-After header — the wire form of the library's typed error.
func TestIngestBackpressure(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{
		IngestDir:          t.TempDir(),
		IngestBudgetBytes:  1 << 10,
		IngestEpochMaxRows: 1 << 30, // never seal on rows; pressure does it
		IngestNoSync:       true,
	})
	resp := postIngest(t, ts.URL, `{"session":"bp","op":"begin","aggregates":[{"func":"count"}]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprint(i)
	}
	block := fmt.Sprintf(`{"session":"bp","op":"push","keys":[%s]}`, strings.Join(keys, ","))
	pushed := false
	for i := 0; i < 1<<16; i++ {
		resp := postIngest(t, ts.URL, block)
		if resp.StatusCode == http.StatusOK {
			ingestJSON(t, resp)
			continue
		}
		wantStatus(t, resp, http.StatusTooManyRequests)
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
		if code := errorCode(t, resp); code != "backpressure" {
			t.Fatalf("refusal code = %q, want backpressure", code)
		}
		pushed = true
		break
	}
	if !pushed {
		t.Fatal("budget never pushed back")
	}
	if s.Metrics().IngestBackpressure.Load() == 0 {
		t.Fatal("backpressure metric not counted")
	}
	resp = postIngest(t, ts.URL, `{"session":"bp","op":"finish"}`)
	wantStatus(t, resp, http.StatusOK)
	parseResponse(t, resp)
}

// TestIngestDrainSealsSessions is the serve half of the graceful-shutdown
// durability story (the SIGTERM handler calls Drain): buffered, never-
// sealed blocks must be checkpointed by Drain — not dropped — so a
// successor server resumes the session with every acknowledged row
// durable.
func TestIngestDrainSealsSessions(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	reg := testRegistry(t, 1<<12)
	s, ts := newTestServer(t, Config{Registry: reg, IngestDir: dir, IngestNoSync: true})

	resp := postIngest(t, ts.URL, `{"session":"dur","op":"begin","aggregates":[{"func":"sum","col":0}]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	// These blocks stay buffered: nothing seals them before Drain.
	resp = postIngest(t, ts.URL, `{"session":"dur","op":"push","keys":[1,2],"columns":[[10,20]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	resp = postIngest(t, ts.URL, `{"session":"dur","op":"push","keys":[1],"columns":[[5]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Post-drain ingest is refused like any other work.
	resp = postIngest(t, ts.URL, `{"session":"dur","op":"status"}`)
	if code := errorCode(t, resp); code != "draining" {
		t.Fatalf("post-drain code = %q", code)
	}

	// A successor server resumes the session with the buffered rows
	// already durable.
	s2, err := NewServer(Config{Registry: reg, IngestDir: dir, IngestNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Metrics().IngestResumed.Load(); got != 1 {
		t.Fatalf("resumed %d sessions, want 1", got)
	}
	sess, err := s2.lookupSession("dur")
	if err != nil {
		t.Fatal(err)
	}
	if p := sess.stream.Progress(); p.RowsDurable != 3 {
		t.Fatalf("rows durable after drain+resume = %d, want 3", p.RowsDurable)
	}
	res, err := sess.stream.Snapshot(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := res.Index()
	if res.Aggs[0][idx[1]] != 15 || res.Aggs[0][idx[2]] != 20 {
		t.Fatalf("resumed sums = %v", res.Aggs[0])
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestIngestResumeAtBoot reboots the server around a live session and
// checks ingest continues where the checkpoint left off, with the
// adopted aggregates.
func TestIngestResumeAtBoot(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	reg := testRegistry(t, 1<<12)
	s1, ts1 := newTestServer(t, Config{Registry: reg, IngestDir: dir, IngestNoSync: true})
	resp := postIngest(t, ts1.URL, `{"session":"boot","op":"begin","aggregates":[{"func":"count"},{"func":"avg","col":0}]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	resp = postIngest(t, ts1.URL, `{"session":"boot","op":"push","keys":[7,7,8],"columns":[[1,2,9]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, Config{Registry: reg, IngestDir: dir, IngestNoSync: true})
	resp = postIngest(t, ts2.URL, `{"session":"boot","op":"push","keys":[8],"columns":[[3]]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	resp = postIngest(t, ts2.URL, `{"session":"boot","op":"finish"}`)
	wantStatus(t, resp, http.StatusOK)
	_, rows := parseResponse(t, resp)
	want := map[uint64]struct {
		count int64
		avg   float64
	}{7: {2, 1.5}, 8: {2, 6}}
	if len(rows) != 2 {
		t.Fatalf("finish groups = %d, want 2", len(rows))
	}
	for _, r := range rows {
		w := want[r.G]
		if r.A[0] != w.count || r.F[1] != w.avg {
			t.Fatalf("group %d = counts %v floats %v, want %+v", r.G, r.A, r.F, w)
		}
	}
}

// TestIngestQueryWindow checks the rolling window scopes a query to the
// last N sealed epochs plus live rows.
func TestIngestQueryWindow(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{IngestDir: t.TempDir(), IngestNoSync: true})
	resp := postIngest(t, ts.URL, `{"session":"w","op":"begin","aggregates":[{"func":"sum","col":0}]}`)
	wantStatus(t, resp, http.StatusOK)
	ingestJSON(t, resp)
	for i := 1; i <= 3; i++ {
		resp = postIngest(t, ts.URL, fmt.Sprintf(`{"session":"w","op":"push","keys":[%d],"columns":[[100]]}`, i))
		wantStatus(t, resp, http.StatusOK)
		ingestJSON(t, resp)
		resp = postIngest(t, ts.URL, `{"session":"w","op":"seal"}`)
		wantStatus(t, resp, http.StatusOK)
		ingestJSON(t, resp)
	}
	resp = postIngest(t, ts.URL, `{"session":"w","op":"query","window":2}`)
	hdr, rows := parseResponse(t, resp)
	if hdr["epochs"].(float64) != 2 || len(rows) != 2 {
		t.Fatalf("window query: header %v, %d rows", hdr, len(rows))
	}
	resp = postIngest(t, ts.URL, `{"session":"w","op":"query"}`)
	if _, rows := parseResponse(t, resp); len(rows) != 3 {
		t.Fatalf("full query rows = %d, want 3", len(rows))
	}
	resp = postIngest(t, ts.URL, `{"session":"w","op":"finish"}`)
	wantStatus(t, resp, http.StatusOK)
	parseResponse(t, resp)
}
