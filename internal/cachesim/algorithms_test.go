package cachesim

import (
	"testing"
)

// simMachine builds the reduced-scale Figure 1 machine used in tests:
// M = 2^12 words of cache, B = 16 words per line.
func simMachine() *Machine { return NewMachine(1<<12, 16) }

func TestAllAlgorithmsProduceCorrectResults(t *testing.T) {
	const n = 1 << 14
	for _, k := range []uint64{1, 7, 256, 1 << 10, 1 << 13} {
		check := func(name string, f func(m *Machine, in Array) Stats) {
			m := simMachine()
			in := UniformKeys(m, n, k, 42)
			st := f(m, in)
			if !VerifyCounts(in, st.Out, st.Groups) {
				t.Fatalf("%s with K=%d produced wrong aggregation result", name, k)
			}
		}
		check("HashAggNaive", HashAggNaive)
		check("HashAggOpt", HashAggOpt)
		check("SortAggOpt", func(m *Machine, in Array) Stats { return SortAggOpt(m, in, 16) })
		check("SortAggNaive", func(m *Machine, in Array) Stats { return SortAggNaive(m, in, 16) })
	}
}

func TestEmptyInput(t *testing.T) {
	m := simMachine()
	in := m.NewArray(0)
	for _, st := range []Stats{
		HashAggNaive(m, in),
		HashAggOpt(m, in),
		SortAggOpt(m, in, 16),
		SortAggNaive(m, in, 16),
	} {
		if st.Groups != 0 {
			t.Fatalf("empty input produced %d groups", st.Groups)
		}
	}
}

// TestHashAggExplosionShape reproduces the key shape of Figure 1: naive
// hash aggregation is cheap while the table fits in cache and explodes
// beyond it, while the optimized variant degrades only gradually.
func TestHashAggExplosionShape(t *testing.T) {
	const n = 1 << 15
	cacheWords := 1 << 12

	costNaive := func(k uint64) int64 {
		m := NewMachine(cacheWords, 16)
		return HashAggNaive(m, UniformKeys(m, n, k, 1)).Transfers
	}
	costOpt := func(k uint64) int64 {
		m := NewMachine(cacheWords, 16)
		return HashAggOpt(m, UniformKeys(m, n, k, 1)).Transfers
	}

	small := uint64(64)        // table ≪ cache
	large := uint64(1 << 13)   // table ≫ cache (2·2·2^13 words > 2^12)
	nSmall := costNaive(small) // ~N/B
	nLarge := costNaive(large)
	if nLarge < 8*nSmall {
		t.Fatalf("expected naive hash explosion: small-K %d, large-K %d", nSmall, nLarge)
	}
	oLarge := costOpt(large)
	if oLarge >= nLarge/2 {
		t.Fatalf("optimized (%d) should be far cheaper than naive (%d) for large K", oLarge, nLarge)
	}
	// In cache, naive and optimized behave the same (single pass).
	oSmall := costOpt(small)
	ratio := float64(oSmall) / float64(nSmall)
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("in-cache costs should match: naive %d vs opt %d", nSmall, oSmall)
	}
}

// TestHashingIsSortingEmpirically: the optimized hash- and sort-based
// algorithms must transfer a similar number of lines across the whole K
// range — the empirical counterpart of emm.TestHashingIsSorting. Hash
// digits spread groups slightly differently than dense key digits, so we
// allow a modest band rather than exact equality.
func TestHashingIsSortingEmpirically(t *testing.T) {
	const n = 1 << 15
	for _, k := range []uint64{16, 1 << 8, 1 << 11, 1 << 13, 1 << 14} {
		mh := NewMachine(1<<12, 16)
		h := HashAggOpt(mh, UniformKeys(mh, n, k, 7)).Transfers
		ms := NewMachine(1<<12, 16)
		s := SortAggOpt(ms, UniformKeys(ms, n, k, 7), 16).Transfers
		lo, hi := h*2/3, h*3/2
		if s < lo || s > hi {
			t.Fatalf("K=%d: sort-opt %d outside [%d, %d] around hash-opt %d", k, s, lo, hi, h)
		}
	}
}

// TestNaiveSortPaysExtraPass: textbook sort aggregation sorts fully and
// then aggregates in a separate pass, so it must cost measurably more than
// the fused optimized variant for moderate K.
func TestNaiveSortPaysExtraPass(t *testing.T) {
	const n = 1 << 15
	k := uint64(1 << 12)
	mn := NewMachine(1<<12, 16)
	naive := SortAggNaive(mn, UniformKeys(mn, n, k, 3), 16).Transfers
	mo := NewMachine(1<<12, 16)
	opt := SortAggOpt(mo, UniformKeys(mo, n, k, 3), 16).Transfers
	if naive <= opt {
		t.Fatalf("naive sort (%d) should cost more than optimized (%d)", naive, opt)
	}
}

// TestOptSinglePassInCache: for K small enough, the optimized algorithms
// read the input once and write the output once — no recursion.
func TestOptSinglePassInCache(t *testing.T) {
	const n = 1 << 14
	m := NewMachine(1<<12, 16)
	in := UniformKeys(m, n, 32, 5)
	st := HashAggOpt(m, in)
	// Input: n/16 lines. Output + table noise: small. Everything beyond
	// ~1.3× the input read indicates a spurious extra pass.
	inputLines := int64(n / 16)
	if st.Transfers > inputLines*13/10 {
		t.Fatalf("in-cache aggregation cost %d transfers, input is only %d lines",
			st.Transfers, inputLines)
	}
}

// TestMonotoneDegradationOpt: the optimized algorithm's cost grows as a
// staircase: more groups can only cost more transfers (within noise).
func TestMonotoneDegradationOpt(t *testing.T) {
	const n = 1 << 15
	prev := int64(0)
	for _, k := range []uint64{4, 64, 1 << 10, 1 << 12, 1 << 14} {
		m := NewMachine(1<<12, 16)
		cur := HashAggOpt(m, UniformKeys(m, n, k, 9)).Transfers
		if cur < prev*9/10 {
			t.Fatalf("cost dropped sharply from %d to %d at K=%d", prev, cur, k)
		}
		if cur > prev {
			prev = cur
		}
	}
}
