package hashtable

// Scalar-vs-batched sweeps of the full HASHING drain loop at N=2^20:
// hash every row, insert, split on full, repeat. The scalar variant is the
// reference oracle end to end — per-row Murmur2, per-row InsertRawCols, and
// the row-at-a-time splitRunsSlow compaction (the pre-batching SplitRuns).
// The batched variant is what the engine runs: HashBatch, InsertRawBatch,
// and the arena-allocating SplitRuns. The differential tests prove the two
// produce bit-identical runs, so the comparison is purely about speed:
//
//	go test -run xxx -bench Hashing -count 10 ./internal/hashtable > out.txt
//	benchstat -col /path out.txt

import (
	"fmt"
	"testing"

	"cacheagg/internal/agg"
	"cacheagg/internal/datagen"
	"cacheagg/internal/hashfn"
	"cacheagg/internal/xrand"
)

const (
	hotN     = 1 << 20
	hotCache = 1 << 20
)

func hotBenchTable(words int) *Table {
	return New(Config{
		CapacityRows:     CapacityForCache(hotCache, words),
		Blocks:           hashfn.Fanout,
		Words:            words,
		OmitHashesInRuns: true,
	})
}

// BenchmarkHashingDrainScalar is the reference-oracle drain loop.
func BenchmarkHashingDrainScalar(b *testing.B) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}})
	ops := lay.WordOps()
	cols := hotVals()
	for _, kExp := range []int{8, 14, 19} {
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: hotN, K: 1 << uint(kExp), Seed: 42})
		b.Run(fmt.Sprintf("K=2^%d", kExp), func(b *testing.B) {
			tb := hotBenchTable(lay.Words)
			b.SetBytes(hotN * 16)
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				tb.Reset()
				for i := 0; i < len(keys); {
					h := hashfn.Murmur2(keys[i])
					if !tb.InsertRawCols(h, keys[i], cols, i, ops) {
						tb.splitRunsSlow()
						continue
					}
					i++
				}
			}
		})
	}
}

// BenchmarkHashingDrainBatched is the engine's batched drain loop.
func BenchmarkHashingDrainBatched(b *testing.B) {
	lay := agg.NewLayout([]agg.Spec{{Kind: agg.Sum, Col: 0}})
	kern := lay.Kernels()
	cols := hotVals()
	hs := make([]uint64, 4096)
	for _, kExp := range []int{8, 14, 19} {
		keys := datagen.Generate(datagen.Spec{Dist: datagen.Uniform, N: hotN, K: 1 << uint(kExp), Seed: 42})
		b.Run(fmt.Sprintf("K=2^%d", kExp), func(b *testing.B) {
			tb := hotBenchTable(lay.Words)
			b.SetBytes(hotN * 16)
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				tb.Reset()
				for i := 0; i < len(keys); {
					blk := len(keys) - i
					if blk > len(hs) {
						blk = len(hs)
					}
					hashfn.HashBatch(keys[i:i+blk], hs[:blk])
					done := 0
					for done < blk {
						n := tb.InsertRawBatch(hs[done:blk], keys[i+done:i+blk], cols, i+done, kern)
						done += n
						if done < blk {
							tb.SplitRuns()
						}
					}
					i += blk
				}
			}
		})
	}
}

func hotVals() [][]int64 {
	rng := xrand.NewXoshiro256(7)
	vals := make([]int64, hotN)
	for i := range vals {
		vals[i] = int64(rng.Next() % 1000)
	}
	return [][]int64{vals}
}
