package main

// The skew sweep: the planning/skew-armor benchmark grid behind
// BENCH_phase8.json. Each skewed distribution is measured with planning off
// and on over the same generated input, so the delta isolates what the
// sketch pass buys (table pre-sizing, heavy-hitter bypass, largest-first
// scheduling) on exactly the inputs ADAPTIVE starts blind on. A uniform
// pair rides along as the no-regression control.

import (
	"fmt"

	"cacheagg/internal/bench"
	"cacheagg/internal/core"
	"cacheagg/internal/datagen"
	"cacheagg/internal/trace"
)

// skewGrid is the sweep's point list. HitFraction/Theta/Window zero values
// select the generator defaults (0.5 / 0.5 / 1024); the explicit points
// pick the skews the planner was designed around.
var skewGrid = []struct {
	label string
	spec  datagen.Spec
}{
	{"uniform/K=2^16", datagen.Spec{Dist: datagen.Uniform, K: 1 << 16}},
	{"uniform-smallK/K=2^9", datagen.Spec{Dist: datagen.Uniform, K: 1 << 9}},
	{"heavy-hitter/hf=0.5/K=2^16", datagen.Spec{Dist: datagen.HeavyHitter, K: 1 << 16, HitFraction: 0.5}},
	{"heavy-hitter/hf=0.9/K=2^16", datagen.Spec{Dist: datagen.HeavyHitter, K: 1 << 16, HitFraction: 0.9}},
	{"zipf/theta=1.05/K=2^16", datagen.Spec{Dist: datagen.Zipf, K: 1 << 16, Theta: 1.05}},
	{"zipf/theta=0.99/K=2^16", datagen.Spec{Dist: datagen.Zipf, K: 1 << 16, Theta: 0.99}},
	{"moving-cluster/w=1024/K=2^16", datagen.Spec{Dist: datagen.MovingCluster, K: 1 << 16, Window: 1024}},
}

// skewSweep measures the grid. Plan-off and plan-on share each input slice;
// every point also writes a trace (with -trace-dir) so the CI delta job can
// diff strategy-switch and table-split counts between the pair.
func skewSweep(sc scale) []*bench.Table {
	sweepRecords = sweepRecords[:0]
	t := bench.NewTable(
		fmt.Sprintf("Skew sweep — planning on/off (N=2^%d, P=%d)", sc.logN, sc.workers),
		"point", "ns/op", "rows/s", "allocs/op")

	for _, g := range skewGrid {
		spec := g.spec
		spec.N = sc.n
		spec.Seed = 11
		keys := datagen.Generate(spec)
		for _, planned := range []bool{false, true} {
			cfg := core.Config{
				Strategy:   core.DefaultAdaptive(),
				Workers:    sc.workers,
				CacheBytes: sc.cache,
				EnablePlan: planned,
			}
			name := fmt.Sprintf("skew/%s/plan=%v", g.label, planned)
			r := sweepPoint(name, sc.n, func() {
				if _, err := core.Distinct(cfg, keys); err != nil {
					panic(err)
				}
			})
			sweepRecords = append(sweepRecords, r)
			t.AddRow(r.Name, fmt.Sprintf("%.0f", r.NsPerOp),
				fmt.Sprintf("%.3e", r.RowsPerSec), r.AllocsPerOp)
			tracePoint(name, func(rec *trace.Recorder) {
				tcfg := cfg
				tcfg.Tracer = rec
				if _, err := core.Distinct(tcfg, keys); err != nil {
					panic(err)
				}
			})
		}
	}
	return []*bench.Table{t}
}
